package lp

import (
	"errors"
	"fmt"
	"math"

	"privcount/internal/mat"
)

// This file is the sparse revised simplex: the default solver for the
// mechanism-design LPs. Where the dense tableau updates an O(m·n)
// working matrix per pivot, the revised method keeps only the constraint
// matrix in CSC form (built directly from the Model's sparse terms, see
// canonical.go), an LU factorization of the current basis
// (internal/mat.SparseLU), and a short eta file of product-form updates
// that is folded into a fresh factorization every refactorEvery pivots.
// Per-pivot work is then O(m + nnz) instead of O(m·n), which is what
// moves the design LPs from minutes at n≈24 to seconds at n≈64.
//
// Structure shared with the dense path: two phases with artificial
// variables, deterministic right-hand-side perturbation against the
// massive degeneracy of the ratio-constraint rows, a switch to Bland's
// rule after a stall, and dual recovery through the canonical row
// metadata. Pricing maintains the full reduced-cost vector
// incrementally — each pivot updates it through the tableau row
// αᵀ = e_rᵀ·B⁻¹·A, computed as one sparse BTRAN plus a CSR row sweep —
// and selects the entering column by devex reference weights, which on
// the design LPs roughly halves the pivot count relative to Dantzig
// pricing. The vector is recomputed from fresh duals at every
// refactorization so incremental drift cannot accumulate past the eta
// file's lifetime.

// errSparseFallback tells SolveWith to rerun the model on the dense
// tableau (degenerate shapes the revised path does not handle, e.g. a
// model with no constraints, or a basis the LU cannot factorize).
var errSparseFallback = errors.New("lp: sparse path fallback")

// errRestoreInfeasible reports that the basis found for the perturbed
// problem is not feasible for the true right-hand sides.
var errRestoreInfeasible = errors.New("lp: perturbed basis infeasible after restore")

// refactorEvery bounds the eta file length before the basis is
// refactorized from scratch.
const refactorEvery = 60

// eta is one product-form basis update: entering column q replaced the
// basic variable in row r, with w = B⁻¹·a_q the transformed column.
type eta struct {
	r    int
	diag float64 // w_r, the pivot element
	idx  []int32 // rows i ≠ r with w_i ≠ 0
	val  []float64
}

// revised is the working state of one revised-simplex run.
type revised struct {
	model *Model
	cf    *canonForm
	opts  Options

	b        []float64 // working RHS (carries the perturbation)
	trueB    []float64 // unperturbed canonical RHS
	basis    []int     // basis[i] = column basic in row i
	basisPos []int     // column -> row position, -1 when nonbasic

	lu     *mat.SparseLU
	etas   []eta
	etaNNZ int // total stored eta entries, for the adaptive refactor cap

	xB []float64 // values of the basic variables, by row position
	y  []float64 // dual scratch (B⁻ᵀ·c_B)
	w  []float64 // ftran scratch (B⁻¹·a_q)

	// Incremental pricing state.
	d       []float64 // reduced costs per column (0 for basic columns)
	gamma   []float64 // devex reference weights
	rho     []float64 // BTRAN scratch for e_rᵀ·B⁻¹
	alphaV  []float64 // scatter accumulator for the tableau row α
	touched []int32   // columns hit by the current α sweep

	iters   int
	refacts int
}

func newRevised(m *Model, cf *canonForm, opts Options, perturb bool) *revised {
	rv := &revised{
		model:    m,
		cf:       cf,
		opts:     opts,
		b:        append([]float64(nil), cf.b...),
		trueB:    cf.b,
		basis:    append([]int(nil), cf.initIdCol...),
		basisPos: make([]int, cf.totalCols),
		xB:       make([]float64, cf.m),
		y:        make([]float64, cf.m),
		w:        make([]float64, cf.m),
		d:        make([]float64, cf.totalCols),
		gamma:    make([]float64, cf.totalCols),
		rho:      make([]float64, cf.m),
		alphaV:   make([]float64, cf.totalCols),
		touched:  make([]int32, 0, cf.totalCols),
	}
	for j := range rv.basisPos {
		rv.basisPos[j] = -1
	}
	for i, j := range rv.basis {
		rv.basisPos[j] = i
	}
	if perturb {
		// Same deterministic scheme as the dense tableau: a strictly
		// positive, row-dependent nudge in [eps, 2eps) that makes the
		// degenerate polytope simple. finish() restores the true data.
		const eps = 1e-9
		h := uint64(0x9e3779b97f4a7c15)
		for i := range rv.b {
			h ^= uint64(i+1) * 0xbf58476d1ce4e5b9
			h ^= h >> 27
			h *= 0x94d049bb133111eb
			rv.b[i] += eps * (1 + float64(h%1024)/1024)
		}
	}
	return rv
}

// refactorize rebuilds the LU factorization of the current basis and
// clears the eta file. A cancelled solve context abandons the partial
// factorization and surfaces ErrCanceled instead of the fallback
// sentinel, so cancellation never triggers an oracle re-solve.
func (rv *revised) refactorize() error {
	lu, err := mat.FactorSparseCtx(rv.opts.ctx, rv.cf.m, func(k int) ([]int32, []float64) {
		return rv.cf.column(rv.basis[k])
	})
	if err != nil {
		if ctxErr(rv.opts.ctx) != nil {
			return canceledErr(rv.opts.ctx)
		}
		return fmt.Errorf("%w: %v", errSparseFallback, err)
	}
	rv.lu = lu
	rv.etas = rv.etas[:0]
	rv.etaNNZ = 0
	rv.refacts++
	return nil
}

// recomputeXB refreshes the basic values from the working RHS through
// the current factorization.
func (rv *revised) recomputeXB() {
	copy(rv.xB, rv.b)
	rv.ftranApply(rv.xB)
}

// ftranApply overwrites x with B⁻¹·x.
func (rv *revised) ftranApply(x []float64) {
	rv.lu.SolveVec(x)
	for k := range rv.etas {
		e := &rv.etas[k]
		t := x[e.r]
		if t == 0 {
			continue
		}
		t /= e.diag
		for p, i := range e.idx {
			x[i] -= e.val[p] * t
		}
		x[e.r] = t
	}
}

// btranApply overwrites y with B⁻ᵀ·y.
func (rv *revised) btranApply(y []float64) {
	for k := len(rv.etas) - 1; k >= 0; k-- {
		e := &rv.etas[k]
		s := y[e.r]
		for p, i := range e.idx {
			s -= e.val[p] * y[i]
		}
		y[e.r] = s / e.diag
	}
	rv.lu.SolveTransposeVec(y)
}

// computeDuals sets rv.y = B⁻ᵀ·c_B for the given cost vector.
func (rv *revised) computeDuals(cost []float64) {
	for i, j := range rv.basis {
		rv.y[i] = cost[j]
	}
	rv.btranApply(rv.y)
}

// reducedCost returns d_j = c_j − yᵀ·a_j under the current duals.
func (rv *revised) reducedCost(cost []float64, j int) float64 {
	d := cost[j]
	idx, val := rv.cf.column(j)
	for p, i := range idx {
		d -= rv.y[i] * val[p]
	}
	return d
}

// refreshPricing recomputes the reduced-cost vector from fresh duals.
// It runs at phase entry and after every refactorization, bounding how
// long incremental updates can drift.
func (rv *revised) refreshPricing(cost []float64) {
	rv.computeDuals(cost)
	for j := 0; j < rv.cf.totalCols; j++ {
		if rv.basisPos[j] >= 0 {
			rv.d[j] = 0
			continue
		}
		rv.d[j] = rv.reducedCost(cost, j)
	}
}

// resetDevex restores the devex reference framework to unit weights.
func (rv *revised) resetDevex() {
	for j := range rv.gamma {
		rv.gamma[j] = 1
	}
}

// pickEntering selects the entering column from the maintained reduced
// costs, or -1 when none improves. Normal mode maximises the devex
// score d²/γ; Bland mode takes the lowest-index improving column, which
// cannot cycle.
func (rv *revised) pickEntering(allowed func(int) bool, tol float64, bland bool) int {
	total := rv.cf.totalCols
	if bland {
		for j := 0; j < total; j++ {
			if rv.d[j] < -tol && rv.basisPos[j] < 0 && allowed(j) {
				return j
			}
		}
		return -1
	}
	best, bestJ := 0.0, -1
	for j := 0; j < total; j++ {
		dj := rv.d[j]
		if dj >= -tol || rv.basisPos[j] >= 0 || !allowed(j) {
			continue
		}
		if s := dj * dj / rv.gamma[j]; s > best {
			best, bestJ = s, j
		}
	}
	return bestJ
}

// updatePricing folds one pivot (entering q, leaving row pr) into the
// reduced costs and devex weights. It must run before applyPivot: it
// needs the pre-pivot basis and factorization to form the tableau row
// αᵀ = e_prᵀ·B⁻¹·A (one sparse BTRAN, then a CSR sweep over the rows
// where ρ is nonzero).
func (rv *revised) updatePricing(pr, q int) {
	cf := rv.cf
	for i := range rv.rho {
		rv.rho[i] = 0
	}
	rv.rho[pr] = 1
	rv.btranApply(rv.rho)

	rv.touched = rv.touched[:0]
	for i, r := range rv.rho {
		if r == 0 {
			continue
		}
		for p := cf.rowPtr[i]; p < cf.rowPtr[i+1]; p++ {
			j := cf.colIdx[p]
			if rv.alphaV[j] == 0 {
				rv.touched = append(rv.touched, j)
			}
			rv.alphaV[j] += r * cf.rowVal[p]
		}
	}

	wr := rv.w[pr]
	g := rv.d[q] / wr
	gq := rv.gamma[q]
	for _, j := range rv.touched {
		a := rv.alphaV[j]
		rv.alphaV[j] = 0
		if a == 0 || rv.basisPos[j] >= 0 {
			continue // basic columns keep d = 0
		}
		rv.d[j] -= g * a
		t := a / wr
		if s := t * t * gq; s > rv.gamma[j] {
			rv.gamma[j] = s
		}
	}
	// The leaving column (basic in row pr, so α = 1 exactly) becomes
	// nonbasic with reduced cost −g; the entering column becomes basic.
	l := rv.basis[pr]
	rv.d[l] = -g
	if gl := gq / (wr * wr); gl > 1 {
		rv.gamma[l] = gl
	} else {
		rv.gamma[l] = 1
	}
	rv.d[q] = 0
	// An exploding framework stops being a useful reference; restart it.
	if rv.gamma[l] > 1e10 || gq > 1e10 {
		rv.resetDevex()
	}
}

// ftranColumn fills rv.w with B⁻¹·a_q.
func (rv *revised) ftranColumn(q int) {
	for i := range rv.w {
		rv.w[i] = 0
	}
	idx, val := rv.cf.column(q)
	for p, i := range idx {
		rv.w[i] = val[p]
	}
	rv.ftranApply(rv.w)
}

// ratioTest picks the leaving row for the entering direction rv.w, or -1
// for an unbounded ray. In phase 2 a basic artificial that the entering
// column would drive positive (w_i < −tol at value ~0) is forced out
// first with a zero-length step, keeping the equality rows honest.
func (rv *revised) ratioTest(bland, barArtificial bool, tol float64) (pr int, forced bool) {
	cf := rv.cf
	if barArtificial {
		// The forced pivot element must clear the same magnitude floor as
		// normal pivots: an eta with a ~1e-9 diagonal would amplify error
		// through every later FTRAN/BTRAN. Below the floor the artificial
		// grows by at most pivotTol·θ per step — noise the final
		// feasibility check bounds.
		const pivotTol = 1e-7
		for i := 0; i < cf.m; i++ {
			if cf.isArtificial(rv.basis[i]) && rv.w[i] < -pivotTol {
				return i, true
			}
		}
	}
	minRatio := math.Inf(1)
	for i := 0; i < cf.m; i++ {
		a := rv.w[i]
		if a <= tol {
			continue
		}
		x := rv.xB[i]
		if x < 0 {
			x = 0
		}
		if r := x / a; r < minRatio {
			minRatio = r
		}
	}
	if math.IsInf(minRatio, 1) {
		return -1, false
	}
	const pivotTol = 1e-7
	tieBound := minRatio + tol*(1+minRatio)
	pr = -1
	prStable := false
	for i := 0; i < cf.m; i++ {
		a := rv.w[i]
		if a <= tol {
			continue
		}
		x := rv.xB[i]
		if x < 0 {
			x = 0
		}
		if x/a > tieBound {
			continue
		}
		if bland {
			if pr < 0 || rv.basis[i] < rv.basis[pr] {
				pr = i
			}
			continue
		}
		stable := a >= pivotTol
		switch {
		case pr < 0:
			pr, prStable = i, stable
		case stable && !prStable:
			pr, prStable = i, stable
		case !stable && prStable:
			// keep the stable candidate
		case a > rv.w[pr]:
			pr = i
		}
	}
	return pr, false
}

// applyPivot executes the basis change: entering q replaces the variable
// basic in row pr, stepping the basic values by theta along rv.w and
// recording the eta update.
func (rv *revised) applyPivot(pr, q int, theta float64) {
	if theta != 0 {
		for i := range rv.xB {
			if rv.w[i] != 0 {
				rv.xB[i] -= theta * rv.w[i]
			}
		}
	}
	rv.xB[pr] = theta

	var nnz int
	for i, v := range rv.w {
		if v != 0 && i != pr {
			nnz++
		}
	}
	e := eta{r: pr, diag: rv.w[pr], idx: make([]int32, 0, nnz), val: make([]float64, 0, nnz)}
	for i, v := range rv.w {
		if v != 0 && i != pr {
			e.idx = append(e.idx, int32(i))
			e.val = append(e.val, v)
		}
	}
	rv.etas = append(rv.etas, e)
	rv.etaNNZ += len(e.val)

	rv.basisPos[rv.basis[pr]] = -1
	rv.basis[pr] = q
	rv.basisPos[q] = pr
}

// needRefactor reports whether the eta file has outgrown its usefulness:
// either in count or in total stored entries relative to the factors
// (dense transformed columns make eta passes cost more than a fresh LU).
func (rv *revised) needRefactor() bool {
	return len(rv.etas) >= refactorEvery || rv.etaNNZ > 2*rv.lu.NNZ()+4*rv.cf.m
}

// runPhase drives primal simplex pivots for one cost vector until
// optimality, unboundedness, or the shared iteration budget runs out.
func (rv *revised) runPhase(cost []float64, allowed func(int) bool, barArtificial bool) (Status, error) {
	tol := rv.opts.Tol
	const stallLimit = 64
	stall := 0
	rv.resetDevex()
	rv.refreshPricing(cost)
	for {
		if ctxErr(rv.opts.ctx) != nil {
			return StatusCanceled, nil
		}
		if rv.iters >= rv.opts.MaxIterations {
			return StatusIterLimit, nil
		}
		bland := stall >= stallLimit
		q := rv.pickEntering(allowed, tol, bland)
		if q < 0 {
			// Optimality must hold on freshly recomputed reduced costs
			// over a fresh factorization: both the eta file and the
			// incremental pricing vector accumulate drift.
			if len(rv.etas) == 0 {
				return StatusOptimal, nil
			}
			if err := rv.refactorize(); err != nil {
				return 0, err
			}
			rv.recomputeXB()
			rv.refreshPricing(cost)
			if q = rv.pickEntering(allowed, tol, bland); q < 0 {
				return StatusOptimal, nil
			}
		}

		rv.ftranColumn(q)
		pr, forced := rv.ratioTest(bland, barArtificial, tol)
		if pr < 0 {
			return StatusUnbounded, nil
		}
		if !forced && math.Abs(rv.w[pr]) < 1e-7 && len(rv.etas) > 0 {
			// Tiny pivot on a stale eta file: refactorize and retry the
			// whole step with honest numbers.
			if err := rv.refactorize(); err != nil {
				return 0, err
			}
			rv.recomputeXB()
			rv.refreshPricing(cost)
			continue
		}

		theta := 0.0
		if !forced {
			x := rv.xB[pr]
			if x < 0 {
				x = 0
			}
			theta = x / rv.w[pr]
			if theta < 0 {
				theta = 0
			}
		}
		rv.updatePricing(pr, q)
		rv.applyPivot(pr, q, theta)
		rv.iters++
		if theta <= tol {
			stall++
		} else {
			stall = 0
		}
		if rv.needRefactor() {
			if err := rv.refactorize(); err != nil {
				return 0, err
			}
			rv.recomputeXB()
			rv.refreshPricing(cost)
		}
	}
}

// evictArtificials pivots zero-valued basic artificials out of the basis
// after phase 1, mirroring the dense path. Rows whose artificial cannot
// be replaced are redundant; their artificial stays basic at zero and
// the phase-2 ratio guard keeps it there.
func (rv *revised) evictArtificials() error {
	cf := rv.cf
	tol := math.Sqrt(rv.opts.Tol)
	rho := make([]float64, cf.m)
	for i := 0; i < cf.m; i++ {
		if !cf.isArtificial(rv.basis[i]) {
			continue
		}
		if ctxErr(rv.opts.ctx) != nil {
			return canceledErr(rv.opts.ctx)
		}
		for k := range rho {
			rho[k] = 0
		}
		rho[i] = 1
		rv.btranApply(rho) // ρ = e_iᵀ·B⁻¹
		for j := 0; j < cf.artStart; j++ {
			if rv.basisPos[j] >= 0 {
				continue
			}
			var v float64
			idx, val := cf.column(j)
			for p, r := range idx {
				v += rho[r] * val[p]
			}
			if math.Abs(v) <= tol {
				continue
			}
			rv.ftranColumn(j)
			rv.applyPivot(i, j, rv.xB[i]/rv.w[i])
			if len(rv.etas) >= refactorEvery {
				if err := rv.refactorize(); err != nil {
					return err
				}
				rv.recomputeXB()
			}
			break
		}
	}
	return nil
}

// phase2Cost builds the canonical (minimisation) phase-2 cost vector.
func (rv *revised) phase2Cost() []float64 {
	cost := make([]float64, rv.cf.totalCols)
	for v := 0; v < rv.cf.nStruct; v++ {
		c := rv.model.obj[v]
		if rv.model.sense == Maximize {
			c = -c
		}
		cost[v] = c
	}
	return cost
}

// finish restores the true right-hand sides, refactorizes the final
// basis, recomputes the basic values exactly, and extracts the solution
// and duals. It reports errRestoreInfeasible when the basis chosen under
// perturbation is not feasible for the true data.
func (rv *revised) finish(cost []float64) (*Solution, error) {
	copy(rv.b, rv.trueB)
	if err := rv.refactorize(); err != nil {
		return nil, err
	}
	rv.recomputeXB()
	for _, v := range rv.xB {
		if v < -1e-7 {
			return nil, errRestoreInfeasible
		}
	}

	sol := &Solution{
		Status:           StatusOptimal,
		X:                make([]float64, rv.cf.nStruct),
		Iterations:       rv.iters,
		Refactorizations: rv.refacts,
		Basis:            append([]int(nil), rv.basis...),
	}
	for i, j := range rv.basis {
		if j < rv.cf.nStruct {
			sol.X[j] = rv.xB[i]
		}
	}
	rv.computeDuals(cost)
	sol.Duals = make([]float64, rv.cf.m)
	for i := 0; i < rv.cf.m; i++ {
		y := rv.y[i] / rv.cf.rowScale[i]
		if rv.model.sense == Maximize {
			y = -y
		}
		sol.Duals[i] = y
	}
	return sol, nil
}

// run executes the full two-phase solve on this state.
func (rv *revised) run() (*Solution, error) {
	if err := rv.refactorize(); err != nil {
		return nil, err
	}
	rv.recomputeXB()

	needPhase1 := false
	cost1 := make([]float64, rv.cf.totalCols)
	for _, j := range rv.basis {
		if rv.cf.isArtificial(j) {
			cost1[j] = 1
			needPhase1 = true
		}
	}
	if needPhase1 {
		st, err := rv.runPhase(cost1, func(int) bool { return true }, false)
		if err != nil {
			return nil, err
		}
		switch st {
		case StatusCanceled:
			return &Solution{Status: StatusCanceled, Iterations: rv.iters}, canceledErr(rv.opts.ctx)
		case StatusIterLimit:
			return &Solution{Status: StatusIterLimit, Iterations: rv.iters}, ErrIterationLimit
		case StatusUnbounded:
			return &Solution{Status: StatusInfeasible, Iterations: rv.iters},
				fmt.Errorf("%w: phase 1 reported unbounded", ErrInfeasible)
		}
		var z1 float64
		for i, j := range rv.basis {
			if rv.cf.isArtificial(j) {
				z1 += rv.xB[i]
			}
		}
		if z1 > math.Sqrt(rv.opts.Tol) {
			return &Solution{Status: StatusInfeasible, Iterations: rv.iters},
				fmt.Errorf("%w: phase-1 objective %g", ErrInfeasible, z1)
		}
		if err := rv.evictArtificials(); err != nil {
			return nil, err
		}
	}

	cost2 := rv.phase2Cost()
	st, err := rv.runPhase(cost2, func(j int) bool { return !rv.cf.isArtificial(j) }, true)
	if err != nil {
		return nil, err
	}
	switch st {
	case StatusCanceled:
		return &Solution{Status: StatusCanceled, Iterations: rv.iters}, canceledErr(rv.opts.ctx)
	case StatusIterLimit:
		return &Solution{Status: StatusIterLimit, Iterations: rv.iters}, ErrIterationLimit
	case StatusUnbounded:
		return &Solution{Status: StatusUnbounded, Iterations: rv.iters}, ErrUnbounded
	}
	return rv.finish(cost2)
}

// runWarm solves starting from a caller-provided basis (typically the
// Basis of a Solution to a neighbouring model, e.g. the previous α in a
// sweep). It reports ok=false when the warm solve cannot deliver an
// optimum — wrong shape, contains an artificial, singular, primal
// infeasible here, or the run itself fails — in which case the caller
// should cold-start.
func (rv *revised) runWarm(warm []int) (sol *Solution, ok bool) {
	cf := rv.cf
	if len(warm) != cf.m {
		return nil, false
	}
	seen := make([]bool, cf.totalCols)
	for _, j := range warm {
		if j < 0 || j >= cf.totalCols || cf.isArtificial(j) || seen[j] {
			return nil, false
		}
		seen[j] = true
	}
	for j := range rv.basisPos {
		rv.basisPos[j] = -1
	}
	copy(rv.basis, warm)
	for i, j := range rv.basis {
		rv.basisPos[j] = i
	}
	if err := rv.refactorize(); err != nil {
		return nil, false
	}
	rv.recomputeXB()
	for _, v := range rv.xB {
		if v < -1e-7 {
			return nil, false // primal infeasible here; cold-start
		}
	}

	cost2 := rv.phase2Cost()
	st, err := rv.runPhase(cost2, func(j int) bool { return !rv.cf.isArtificial(j) }, true)
	if err != nil || st != StatusOptimal {
		// A warm basis must cost at most a cold start: a stale basis that
		// stalls into the iteration limit (or drifts into an unbounded
		// reading) is not a verdict about the model — hand the solve back
		// to the cold perturbed path.
		return nil, false
	}
	sol, err = rv.finish(cost2)
	if err != nil {
		return nil, false
	}
	return sol, true
}

// solveSparse runs the revised simplex on the canonical form: a
// warm-started run when Options.Basis applies, otherwise the perturbed
// two-phase solve with an unperturbed retry should the perturbed basis
// turn out infeasible for the true data.
func (m *Model) solveSparse(cf *canonForm, opts Options) (*Solution, error) {
	if cf.m == 0 {
		return nil, errSparseFallback
	}
	if opts.Basis != nil {
		rv := newRevised(m, cf, opts, false)
		if sol, ok := rv.runWarm(opts.Basis); ok {
			return sol, nil
		}
		if ctxErr(opts.ctx) != nil {
			return &Solution{Status: StatusCanceled}, canceledErr(opts.ctx)
		}
	}
	rv := newRevised(m, cf, opts, true)
	sol, err := rv.run()
	if errors.Is(err, errRestoreInfeasible) {
		rv = newRevised(m, cf, opts, false)
		sol, err = rv.run()
		if errors.Is(err, errRestoreInfeasible) {
			return nil, errSparseFallback
		}
	}
	return sol, err
}
