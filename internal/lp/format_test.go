package lp

import (
	"math"
	"strings"
	"testing"
)

func TestParseLPBasic(t *testing.T) {
	m, err := ParseLP(`
		/* a classic */
		max: 3x + 2y;
		c1: x + y <= 4;
		c2: x + 3y <= 6;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sense() != Maximize {
		t.Error("sense should be max")
	}
	if m.NumVariables() != 2 || m.NumConstraints() != 2 {
		t.Fatalf("parsed %d vars, %d constraints", m.NumVariables(), m.NumConstraints())
	}
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-12) > 1e-9 {
		t.Fatalf("objective %v, want 12", sol.Objective)
	}
}

func TestParseLPMinKeywords(t *testing.T) {
	for _, kw := range []string{"min", "minimize", "minimise", "MIN"} {
		m, err := ParseLP(kw + ": x; c: x >= 2;")
		if err != nil {
			t.Fatalf("%s: %v", kw, err)
		}
		if m.Sense() != Minimize {
			t.Errorf("%s parsed as %v", kw, m.Sense())
		}
	}
}

func TestParseLPCoefficientForms(t *testing.T) {
	m, err := ParseLP(`min: 2x + 3*y - z + 0.5 w;
		c: x + y + z + w >= 1;`)
	if err != nil {
		t.Fatal(err)
	}
	coefs := map[string]float64{}
	for v := 0; v < m.NumVariables(); v++ {
		coefs[m.VariableName(v)] = m.ObjectiveCoeff(v)
	}
	want := map[string]float64{"x": 2, "y": 3, "z": -1, "w": 0.5}
	for name, c := range want {
		if coefs[name] != c {
			t.Errorf("coef %s = %v, want %v", name, coefs[name], c)
		}
	}
}

func TestParseLPMovesConstants(t *testing.T) {
	// x + 1 <= y + 4  ≡  x − y <= 3.
	m, err := ParseLP("min: x; c: x + 1 <= y + 4;")
	if err != nil {
		t.Fatal(err)
	}
	c := m.Constraint(0)
	if c.RHS != 3 {
		t.Fatalf("RHS = %v, want 3", c.RHS)
	}
	coeffs := map[string]float64{}
	for _, term := range c.Terms {
		coeffs[m.VariableName(term.Var)] = term.Coeff
	}
	if coeffs["x"] != 1 || coeffs["y"] != -1 {
		t.Fatalf("terms = %v", coeffs)
	}
}

func TestParseLPComments(t *testing.T) {
	m, err := ParseLP(`
		// line comment
		min: x; /* inline */ c: x >= 1; // trailing
	`)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumConstraints() != 1 {
		t.Fatalf("constraints = %d", m.NumConstraints())
	}
}

func TestParseLPScientificNumbers(t *testing.T) {
	m, err := ParseLP("min: 1e-3 x; c: x >= 2.5e2;")
	if err != nil {
		t.Fatal(err)
	}
	if m.ObjectiveCoeff(0) != 1e-3 {
		t.Fatalf("coef = %v", m.ObjectiveCoeff(0))
	}
	if m.Constraint(0).RHS != 250 {
		t.Fatalf("rhs = %v", m.Constraint(0).RHS)
	}
}

func TestParseLPErrors(t *testing.T) {
	cases := map[string]string{
		"no objective":          "c: x >= 1;",
		"duplicate objective":   "min: x; max: x; c: x >= 1;",
		"unterminated comment":  "min: x; /* oops",
		"bad char":              "min: x; c: x >= $1;",
		"missing semicolon":     "min: x",
		"missing comparison":    "min: x; c: x 4;",
		"constraint no semi":    "min: x; c: x >= 1",
		"equality double const": "min: x; c: >= ;",
	}
	for name, src := range cases {
		if _, err := ParseLP(src); err == nil {
			t.Errorf("%s: expected parse error for %q", name, src)
		}
	}
}

func TestWriteLPRoundTrip(t *testing.T) {
	src := `min: 2a + 3b - c;
		r1: a + b >= 2;
		r2: b - 4c <= 10;
		r3: a + c = 3;`
	m1, err := ParseLP(src)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ParseLP(m1.WriteLP())
	if err != nil {
		t.Fatalf("re-parse of WriteLP output failed: %v\n%s", err, m1.WriteLP())
	}
	s1, err := m1.Solve()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s1.Objective-s2.Objective) > 1e-9 {
		t.Fatalf("round trip changed objective: %v vs %v", s1.Objective, s2.Objective)
	}
}

func TestWriteLPMentionsConstraintNames(t *testing.T) {
	m, err := ParseLP("min: x; budget: x >= 3;")
	if err != nil {
		t.Fatal(err)
	}
	out := m.WriteLP()
	if !strings.Contains(out, "budget:") {
		t.Fatalf("WriteLP output missing constraint name:\n%s", out)
	}
}

func TestParseLPBracketIdentifiers(t *testing.T) {
	// Matrix-style names like r[0][1] used by generated models.
	m, err := ParseLP("min: r[0][1]; c: r[0][1] >= 1;")
	if err != nil {
		t.Fatal(err)
	}
	if m.VariableName(0) != "r[0][1]" {
		t.Fatalf("name = %q", m.VariableName(0))
	}
}
