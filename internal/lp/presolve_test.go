package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// Tests for the presolve pass: each reduction individually (stats
// observable through Solution.Presolve), infeasibility detection, and
// the lattice property test pinning presolved solves to unreduced ones
// across the design LPs' property-set structures.

func TestPresolveFoldsSingletonRows(t *testing.T) {
	// min 2x + 3y  s.t.  x + y ≥ 4 (row), x ≥ 1 (singleton), y ≤ 10
	// (singleton). Optimum x = 4 − y... costs favour x: x = 4, y = 0?
	// No: 2 < 3, so all mass on x: x = 4, y = 0, cost 8.
	m := NewModel("fold", Minimize)
	x := m.AddVariable("x")
	y := m.AddVariable("y")
	m.SetObjective(x, 2)
	m.SetObjective(y, 3)
	m.AddConstraint("need", []Term{{x, 1}, {y, 1}}, GE, 4)
	m.AddConstraint("floor", []Term{{x, 1}}, GE, 1)
	m.AddConstraint("cap", []Term{{y, 1}}, LE, 10)
	sol, err := m.SolveWith(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Presolve.BoundsFolded != 2 {
		t.Fatalf("BoundsFolded = %d, want 2 (stats: %+v)", sol.Presolve.BoundsFolded, sol.Presolve)
	}
	if math.Abs(sol.Objective-8) > 1e-8 {
		t.Fatalf("objective %v, want 8", sol.Objective)
	}
	dense, err := m.SolveWith(Options{Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	for i := range dense.Duals {
		if d := math.Abs(dense.Duals[i] - sol.Duals[i]); d > 1e-8 {
			t.Fatalf("dual %d: presolved %v vs dense %v", i, sol.Duals[i], dense.Duals[i])
		}
	}
}

func TestPresolveActiveBoundDualRecovery(t *testing.T) {
	// The folded floor is active at the optimum, so its recovered dual
	// must carry the full reduced cost: min x s.t. x ≥ 3 has dual 1 on
	// the floor row.
	m := NewModel("active", Minimize)
	x := m.AddVariable("x")
	m.SetObjective(x, 1)
	m.AddConstraint("floor", []Term{{x, 1}}, GE, 3)
	sol, err := m.SolveWith(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Value(x)-3) > 1e-9 || math.Abs(sol.Duals[0]-1) > 1e-9 {
		t.Fatalf("x=%v dual=%v, want 3, 1", sol.Value(x), sol.Duals[0])
	}
}

func TestPresolveDominatedRatioRows(t *testing.T) {
	// x ≤ y dominates 0.7x ≤ y over x, y ≥ 0. The dominated row must be
	// dropped without changing the optimum.
	m := NewModel("dom", Maximize)
	x := m.AddVariable("x")
	y := m.AddVariable("y")
	m.SetObjective(x, 1)
	m.AddConstraint("strong", []Term{{x, 1}, {y, -1}}, LE, 0)
	m.AddConstraint("weak", []Term{{x, 0.7}, {y, -1}}, LE, 0)
	m.AddConstraint("cap", []Term{{y, 1}}, LE, 2)
	sol, err := m.SolveWith(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Presolve.DominatedRows != 1 {
		t.Fatalf("DominatedRows = %d, want 1 (stats: %+v)", sol.Presolve.DominatedRows, sol.Presolve)
	}
	if math.Abs(sol.Objective-2) > 1e-8 {
		t.Fatalf("objective %v, want 2", sol.Objective)
	}
	if math.Abs(sol.Duals[1]) > 1e-12 {
		t.Fatalf("dominated row carries dual %v, want 0", sol.Duals[1])
	}
}

func TestPresolveDuplicateRows(t *testing.T) {
	// 2x + 2y ≤ 6 is x + y ≤ 3 scaled; the slacker x + y ≤ 5 copy drops.
	m := NewModel("dup", Maximize)
	x := m.AddVariable("x")
	y := m.AddVariable("y")
	m.SetObjective(x, 2)
	m.SetObjective(y, 1)
	m.AddConstraint("a", []Term{{x, 2}, {y, 2}}, LE, 6)
	m.AddConstraint("b", []Term{{x, 1}, {y, 1}}, LE, 5)
	sol, err := m.SolveWith(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Presolve.DuplicateRows != 1 {
		t.Fatalf("DuplicateRows = %d, want 1 (stats: %+v)", sol.Presolve.DuplicateRows, sol.Presolve)
	}
	if math.Abs(sol.Objective-6) > 1e-8 {
		t.Fatalf("objective %v, want 6 (x=3)", sol.Objective)
	}
}

func TestPresolveFixedVariableSubstitution(t *testing.T) {
	m := NewModel("fixed", Maximize)
	x := m.AddVariable("x")
	y := m.AddVariable("y")
	m.SetObjective(x, 1)
	m.SetObjective(y, 1)
	m.SetBounds(y, 1.5, 1.5)
	m.AddConstraint("c", []Term{{x, 1}, {y, 2}}, LE, 5)
	sol, err := m.SolveWith(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Presolve.FixedVars != 1 {
		t.Fatalf("FixedVars = %d, want 1", sol.Presolve.FixedVars)
	}
	if math.Abs(sol.Value(x)-2) > 1e-8 || math.Abs(sol.Value(y)-1.5) > 1e-12 {
		t.Fatalf("x=%v y=%v, want 2, 1.5", sol.Value(x), sol.Value(y))
	}
}

// TestPresolveSubstitutionChainDuals is the regression test for the
// fold-stack dual recovery: an equality singleton fixes x1, which turns
// both remaining two-variable rows into singletons on x0 that presolve
// folds as bounds. Recovering the folded rows' duals must propagate
// through their x1 coefficients before the equality row's dual is read
// off x1's reduced cost — a stale snapshot hands row 0 a dual that
// violates strong duality.
func TestPresolveSubstitutionChainDuals(t *testing.T) {
	build := func() *Model {
		m := NewModel("chain", Minimize)
		x0 := m.AddVariable("x0")
		x1 := m.AddVariable("x1")
		m.SetObjective(x0, 0.2434)
		m.SetObjective(x1, 1.4090)
		m.AddConstraint("fix", []Term{{x1, 0.7293}}, EQ, 1.6721)
		m.AddConstraint("need", []Term{{x0, 0.6634}, {x1, 0.9138}}, GE, 4.5049)
		m.AddConstraint("cap", []Term{{x0, 0.8200}, {x1, 0.5521}}, LE, 4.5360)
		return m
	}
	pre, err := build().SolveWith(Options{})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := build().SolveWith(Options{Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	for i := range dense.Duals {
		if d := math.Abs(dense.Duals[i] - pre.Duals[i]); d > 1e-6*(1+math.Abs(dense.Duals[i])) {
			t.Fatalf("dual %d: presolved %v vs dense %v", i, pre.Duals[i], dense.Duals[i])
		}
	}
	verifyDualCertificate(t, build(), pre, 1e-6)
}

// TestPresolveRandomChainDuals fuzzes the same shape class: random
// fixing equalities plus random two-variable rows that collapse into
// bound folds, pinned elementwise against the dense oracle (general
// position keeps the optimal duals unique).
func TestPresolveRandomChainDuals(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		m := NewModel("chainfuzz", Minimize)
		x0 := m.AddVariable("")
		x1 := m.AddVariable("")
		m.SetObjective(x0, 0.1+rng.Float64())
		m.SetObjective(x1, 0.1+2*rng.Float64())
		m.AddConstraint("", []Term{{x1, 0.2 + rng.Float64()}}, EQ, 0.5+2*rng.Float64())
		m.AddConstraint("", []Term{{x0, 0.2 + rng.Float64()}, {x1, 0.2 + rng.Float64()}}, GE, 2+4*rng.Float64())
		m.AddConstraint("", []Term{{x0, 0.2 + rng.Float64()}, {x1, 0.2 + rng.Float64()}}, LE, 20+rng.Float64())
		pre, preErr := m.SolveWith(Options{})
		dense, denseErr := m.SolveWith(Options{Method: MethodDense})
		if (preErr == nil) != (denseErr == nil) {
			t.Fatalf("trial %d: presolved err %v, dense err %v", trial, preErr, denseErr)
		}
		if preErr != nil {
			continue
		}
		if d := math.Abs(pre.Objective - dense.Objective); d > 1e-6*(1+math.Abs(dense.Objective)) {
			t.Fatalf("trial %d: objectives differ by %g", trial, d)
		}
		for i := range dense.Duals {
			if d := math.Abs(dense.Duals[i] - pre.Duals[i]); d > 1e-6*(1+math.Abs(dense.Duals[i])) {
				t.Fatalf("trial %d: dual %d: presolved %v vs dense %v", trial, i, pre.Duals[i], dense.Duals[i])
			}
		}
	}
}

func TestPresolveInfeasibleBounds(t *testing.T) {
	m := NewModel("cross", Minimize)
	x := m.AddVariable("x")
	m.SetObjective(x, 1)
	m.AddConstraint("lo", []Term{{x, 1}}, GE, 3)
	m.AddConstraint("hi", []Term{{x, 1}}, LE, 1)
	_, err := m.SolveWith(Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	// The oracle must agree that the unreduced model is infeasible.
	if _, err := m.SolveWith(Options{Method: MethodDense}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("dense err = %v, want ErrInfeasible", err)
	}
}

func TestPresolveEmptyRow(t *testing.T) {
	m := NewModel("empty", Minimize)
	x := m.AddVariable("x")
	m.SetObjective(x, 1)
	m.AddConstraint("ok", nil, LE, 1)  // 0 ≤ 1: droppable
	m.AddConstraint("bad", nil, GE, 9) // 0 ≥ 9: infeasible
	_, err := m.SolveWith(Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// latticeModel builds a design-shaped LP over the §IV-A property
// structures selected by mask — BASICDP always, then row/column
// monotonicity difference rows, weak-honesty floors, fairness ties, and
// symmetry equalities — mirroring the constraint shapes Choose can emit.
func latticeModel(n int, alpha float64, mask int) *Model {
	m := NewModel("lattice", Minimize)
	vars := make([][]int, n+1)
	for i := range vars {
		vars[i] = make([]int, n+1)
		for j := range vars[i] {
			vars[i][j] = m.AddVariable("")
			if i != j {
				m.SetObjective(vars[i][j], 1/float64(n+1))
			}
		}
	}
	for j := 0; j <= n; j++ {
		terms := make([]Term, 0, n+1)
		for i := 0; i <= n; i++ {
			terms = append(terms, Term{vars[i][j], 1})
		}
		m.AddConstraint("", terms, EQ, 1)
	}
	for i := 0; i <= n; i++ {
		for j := 0; j < n; j++ {
			m.AddConstraint("", []Term{{vars[i][j+1], alpha}, {vars[i][j], -1}}, LE, 0)
			m.AddConstraint("", []Term{{vars[i][j], alpha}, {vars[i][j+1], -1}}, LE, 0)
		}
	}
	if mask&1 != 0 { // row monotonicity
		for i := 0; i <= n; i++ {
			for j := 1; j <= i; j++ {
				m.AddConstraint("", []Term{{vars[i][j-1], 1}, {vars[i][j], -1}}, LE, 0)
			}
			for j := i; j < n; j++ {
				m.AddConstraint("", []Term{{vars[i][j+1], 1}, {vars[i][j], -1}}, LE, 0)
			}
		}
	}
	if mask&2 != 0 { // column monotonicity
		for j := 0; j <= n; j++ {
			for i := 1; i <= j; i++ {
				m.AddConstraint("", []Term{{vars[i-1][j], 1}, {vars[i][j], -1}}, LE, 0)
			}
			for i := j; i < n; i++ {
				m.AddConstraint("", []Term{{vars[i+1][j], 1}, {vars[i][j], -1}}, LE, 0)
			}
		}
	}
	if mask&4 != 0 { // weak honesty floors (singleton GE rows)
		for i := 0; i <= n; i++ {
			m.AddConstraint("", []Term{{vars[i][i], 1}}, GE, 1/float64(n+1))
		}
	}
	if mask&8 != 0 { // fairness: equal diagonal
		for i := 1; i <= n; i++ {
			m.AddConstraint("", []Term{{vars[i][i], 1}, {vars[0][0], -1}}, EQ, 0)
		}
	}
	if mask&16 != 0 { // symmetry equalities
		for i := 0; i <= n; i++ {
			for j := 0; j <= n; j++ {
				mi, mj := n-i, n-j
				if mi < i || (mi == i && mj <= j) {
					continue
				}
				m.AddConstraint("", []Term{{vars[i][j], 1}, {vars[mi][mj], -1}}, EQ, 0)
			}
		}
	}
	if mask&32 != 0 { // infeasible twist: a floor above what sums allow
		m.AddConstraint("", []Term{{vars[0][0], 1}}, GE, 1.5)
	}
	return m
}

// TestPresolveLatticeAgreesWithUnreduced solves every lattice shape with
// and without presolve and requires matching outcomes: identical
// objectives to 1e-6, infeasibility verdicts in agreement, and both dual
// vectors valid optimality certificates of the same strength (these LPs
// are massively degenerate, so elementwise dual equality is not defined;
// certificate validity plus an equal dual objective is the meaningful
// notion of "the same duals" — elementwise agreement is pinned
// separately on general-position instances).
func TestPresolveLatticeAgreesWithUnreduced(t *testing.T) {
	for _, n := range []int{3, 5} {
		for _, alpha := range []float64{0.5, 0.8} {
			for mask := 0; mask < 64; mask++ {
				m := latticeModel(n, alpha, mask)
				pre, preErr := m.SolveWith(Options{})
				raw, rawErr := latticeModel(n, alpha, mask).SolveWith(Options{NoPresolve: true})
				if (preErr == nil) != (rawErr == nil) {
					t.Fatalf("n=%d a=%g mask=%d: presolved err %v, unreduced err %v",
						n, alpha, mask, preErr, rawErr)
				}
				if preErr != nil {
					if !errors.Is(preErr, ErrInfeasible) || !errors.Is(rawErr, ErrInfeasible) {
						t.Fatalf("n=%d a=%g mask=%d: non-infeasible failures %v / %v",
							n, alpha, mask, preErr, rawErr)
					}
					continue
				}
				if d := math.Abs(pre.Objective - raw.Objective); d > 1e-6*(1+math.Abs(raw.Objective)) {
					t.Fatalf("n=%d a=%g mask=%d: objectives differ by %g (%v vs %v)",
						n, alpha, mask, d, pre.Objective, raw.Objective)
				}
				verifyDualCertificate(t, m, pre, 1e-6)
				verifyDualCertificate(t, m, raw, 1e-6)
				if err := m.CheckFeasible(pre.X, 1e-7); err != nil {
					t.Fatalf("n=%d a=%g mask=%d: presolved point: %v", n, alpha, mask, err)
				}
			}
		}
	}
}

func TestPresolveStatsOnDesignShape(t *testing.T) {
	// The WM-shaped lattice (RM+CM+WH) must show the reductions the
	// serving path relies on: floors folded into bounds and the
	// toward-diagonal ratio rows dropped as dominated.
	m := latticeModel(8, 0.8, 1|2|4)
	sol, err := m.SolveWith(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Presolve.BoundsFolded < 9 {
		t.Fatalf("BoundsFolded = %d, want >= 9 (the WH floors)", sol.Presolve.BoundsFolded)
	}
	if sol.Presolve.DominatedRows < 72 {
		t.Fatalf("DominatedRows = %d, want >= 72 (the dominated ratio rows)", sol.Presolve.DominatedRows)
	}
	if sol.Presolve.Reductions() < 81 {
		t.Fatalf("Reductions() = %d, want >= 81", sol.Presolve.Reductions())
	}
}
