//go:build !race

package costtest

// raceEnabled reports whether this binary runs under the race detector;
// see race_on.go.
const raceEnabled = false
