package costtest

import (
	"strings"
	"testing"

	"privcount/internal/service"
)

// TestAllKindsWithinEnvelope is the enforcement pass: every declared
// kind's representative build and serving path must stay inside the
// envelope the service declares for it. A kind added to the enum
// without an envelope fails here too — its zero envelope admits
// nothing.
func TestAllKindsWithinEnvelope(t *testing.T) {
	for _, kind := range service.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			// Not parallel: CheckEnvelope's heap measurements are
			// process-global, so concurrent builds would cross-pollute.
			CheckEnvelope(t, Representative(kind), service.EnvelopeFor(kind))
		})
	}
}

// recorder captures harness failures instead of failing the real test,
// so the test below can assert that CheckEnvelope DOES fail when a
// declaration is broken.
type recorder struct {
	testing.TB // promoted for Helper etc.; Errorf overridden below
	failures   []string
}

func (r *recorder) Errorf(format string, args ...any) {
	r.failures = append(r.failures, strings.TrimSpace(strings.ReplaceAll(format, "%v", "")))
}

func (r *recorder) contains(substr string) bool {
	for _, f := range r.failures {
		if strings.Contains(f, substr) {
			return true
		}
	}
	return false
}

// TestBrokenEnvelopeFails demonstrates the harness has teeth: an
// envelope whose ceilings or declarations a kind does not actually meet
// is reported, not silently accepted.
func TestBrokenEnvelopeFails(t *testing.T) {
	spec := Representative(service.KindGeometric)

	// Ceiling below the representative spec: the static coupling check
	// must catch the declaration/admission desync.
	broken := service.EnvelopeFor(service.KindGeometric)
	broken.MaxN = spec.N - 1
	rec := &recorder{TB: t}
	CheckEnvelope(rec, spec, broken)
	if !rec.contains("over the declared MaxN") {
		t.Errorf("lowered MaxN not reported; failures: %q", rec.failures)
	}

	// An impossible allocation declaration: the measured pass must catch
	// it (zero allocations is still more than minus one).
	broken = service.EnvelopeFor(service.KindGeometric)
	broken.SampleAllocs = -1
	rec = &recorder{TB: t}
	CheckEnvelope(rec, spec, broken)
	if !rec.contains("allocs per draw") {
		t.Errorf("impossible SampleAllocs not reported; failures: %q", rec.failures)
	}
}

// TestOverCeilingRefusedWithOverLimit pins the taxonomy end of the
// coupling: one past every kind's ceiling is refused by Validate with
// ErrOverLimit specifically (the code the HTTP layer maps to 400
// over_limit), not a generic invalid-spec error.
func TestOverCeilingRefusedWithOverLimit(t *testing.T) {
	for _, kind := range service.Kinds() {
		spec := Representative(kind)
		spec.N = service.EnvelopeFor(kind).MaxN + 1
		err := spec.Validate()
		rec := &recorder{TB: t}
		CheckEnvelope(rec, spec, service.EnvelopeFor(kind))
		if !rec.contains("over the declared MaxN") {
			t.Errorf("%v: over-ceiling spec not caught by harness (validate err: %v)", kind, err)
		}
	}
}
