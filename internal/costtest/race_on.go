//go:build race

package costtest

// raceEnabled reports that this binary runs under the race detector,
// which slows the LP kernels by an order of magnitude; CheckEnvelope
// widens its wall-clock budgets accordingly.
const raceEnabled = true
