// Package costtest enforces the cost envelopes that internal/service
// declares for its mechanism kinds (service.CostEnvelope). The idiom
// follows starlark's startest harness: a declaration (MemSafe/CPUSafe
// there, a CostEnvelope here) is only worth anything if a test measures
// against it, so CheckEnvelope builds a representative spec of each
// kind under wall-clock, heap, and allocation measurement and fails
// when the kind spends more than its envelope's classes allow. The
// envelope table and this harness hold each other honest: a new kind
// added without an envelope fails here (its zero envelope admits
// nothing), and an envelope loosened without the behaviour to match is
// a visible diff in one file rather than silent drift.
package costtest

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"privcount/internal/core"
	"privcount/internal/service"
)

// Representative returns the spec CheckEnvelope measures for kind:
// large enough that the construction exercises its real cost class
// (dense table fills, a warm-start simplex solve, a cold epigraph
// solve), small enough that the whole harness stays a unit test.
func Representative(kind service.Kind) service.Spec {
	switch kind {
	case service.KindChoose:
		// WH+CM routes Figure 5 to an LP design — choose's declared
		// worst-case class — rather than a closed form.
		return service.Spec{Kind: kind, N: 32, Alpha: 0.5, Props: core.WeakHonesty | core.ColumnMonotone}
	case service.KindGeometric, service.KindExplicitFair:
		return service.Spec{Kind: kind, N: 64, Alpha: 0.5}
	case service.KindUniform:
		return service.Spec{Kind: kind, N: 64}
	case service.KindLP:
		return service.Spec{Kind: kind, N: 24, Alpha: 0.5, Props: core.WeakHonesty | core.ColumnMonotone}
	case service.KindLPMinimax:
		return service.Spec{Kind: kind, N: 16, Alpha: 0.5}
	}
	return service.Spec{Kind: kind}
}

// classBudget maps a declared cost class to the concrete budget the
// harness holds a representative build to. The curves are deliberately
// generous — they exist to catch order-of-magnitude regressions (an
// accidentally quadratic allocation pattern, a lost crash basis turning
// a warm solve cold), not to flake on a loaded CI machine.
func classBudget(c service.CostClass) (maxSeconds float64, maxBytes uint64) {
	switch c {
	case service.CostTable:
		return 5, 64 << 20
	case service.CostLP:
		return 30, 256 << 20
	case service.CostLPMinimax:
		return 120, 512 << 20
	}
	return 0, 0 // unknown class: admits nothing
}

// CheckEnvelope verifies that spec's kind lives within env, reporting
// every violation via tb.Errorf (never Fatalf, so a recording TB can
// collect them). It checks, in order:
//
//  1. Coupling: the spec itself is admissible, and one past the
//     envelope's MaxN is refused by Validate with ErrOverLimit — so the
//     declared ceiling and the admission gate cannot desync.
//  2. Build cost: constructing the mechanism stays inside the wall-clock
//     and heap budgets of the declared BuildCPU and BuildMem classes.
//  3. Serving cost: one cached Sample draw performs at most
//     env.SampleAllocs heap allocations (measured by
//     testing.AllocsPerRun).
func CheckEnvelope(tb testing.TB, spec service.Spec, env service.CostEnvelope) {
	tb.Helper()

	// Static coupling between the declaration and admission control.
	if spec.N > env.MaxN {
		tb.Errorf("%s: representative spec n=%d is over the declared MaxN=%d", spec, spec.N, env.MaxN)
		return
	}
	if err := spec.Validate(); err != nil {
		tb.Errorf("%s: representative spec does not validate: %v", spec, err)
		return
	}
	over := spec
	over.N = env.MaxN + 1
	if err := over.Validate(); !errors.Is(err, service.ErrOverLimit) {
		tb.Errorf("%s: n=%d (one past declared MaxN) not refused with ErrOverLimit, got: %v", spec, over.N, err)
	}

	// Build under measurement. The service is fresh so the build is
	// cold, and created before the baseline read so its own setup does
	// not count against the kind.
	svc := service.New(service.Config{Capacity: 4, Shards: 1})
	defer svc.Close()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	_, err := svc.Get(spec)
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		tb.Errorf("%s: build failed: %v", spec, err)
		return
	}
	maxSeconds, _ := classBudget(env.BuildCPU)
	if raceEnabled {
		maxSeconds *= 10 // the race detector slows solves well over 2×
	}
	if wall > maxSeconds {
		tb.Errorf("%s: build took %.2fs, over the %s class budget of %.0fs", spec, wall, env.BuildCPU, maxSeconds)
	}
	_, maxBytes := classBudget(env.BuildMem)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > maxBytes {
		tb.Errorf("%s: build allocated %d bytes, over the %s class budget of %d", spec, grew, env.BuildMem, maxBytes)
	}

	// Serving: the hot path's allocation declaration. Concurrent
	// runtime activity (GC, the race detector's shadow bookkeeping) can
	// only ever inflate an AllocsPerRun reading, so the minimum of a few
	// measurements is the hot path's true cost — one noisy reading must
	// not flake a 0-alloc declaration.
	j := spec.N / 2
	allocs := float64(0)
	for attempt := 0; attempt < 3; attempt++ {
		got := testing.AllocsPerRun(200, func() {
			if _, err := svc.Sample(spec, j); err != nil {
				tb.Errorf("%s: sample failed: %v", spec, err)
			}
		})
		if attempt == 0 || got < allocs {
			allocs = got
		}
	}
	if allocs > float64(env.SampleAllocs) {
		tb.Errorf("%s: Sample performs %.0f allocs per draw, envelope declares at most %d", spec, allocs, env.SampleAllocs)
	}
}
