package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAliasErrors(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
	}{
		{"empty", nil},
		{"negative", []float64{0.5, -0.1}},
		{"nan", []float64{0.5, math.NaN()}},
		{"inf", []float64{math.Inf(1)}},
		{"all zero", []float64{0, 0, 0}},
	}
	for _, c := range cases {
		if _, err := NewAlias(c.weights); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestAliasN(t *testing.T) {
	a, err := NewAlias([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 3 {
		t.Fatalf("N = %d", a.N())
	}
}

func TestAliasPointMass(t *testing.T) {
	a, err := NewAlias([]float64{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	r := New(1)
	for i := 0; i < 1000; i++ {
		if got := a.Sample(r); got != 1 {
			t.Fatalf("point mass sampled %d", got)
		}
	}
}

func TestAliasUniform(t *testing.T) {
	a, err := NewAlias([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	r := New(2)
	counts := make([]int, 4)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[a.Sample(r)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)/trials-0.25) > 0.01 {
			t.Errorf("outcome %d rate %v, want 0.25", i, float64(c)/trials)
		}
	}
}

func TestAliasUnnormalizedWeights(t *testing.T) {
	// Weights need not sum to 1; only ratios matter.
	a, err := NewAlias([]float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	r := New(3)
	const trials = 100000
	zero := 0
	for i := 0; i < trials; i++ {
		if a.Sample(r) == 0 {
			zero++
		}
	}
	if rate := float64(zero) / trials; math.Abs(rate-0.75) > 0.01 {
		t.Fatalf("Pr[0] = %v, want 0.75", rate)
	}
}

func TestAliasChiSquare(t *testing.T) {
	weights := []float64{0.05, 0.3, 0.15, 0.4, 0.1}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := New(5)
	const trials = 200000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[a.Sample(r)]++
	}
	var chi2 float64
	for i, w := range weights {
		expected := w * trials
		d := float64(counts[i]) - expected
		chi2 += d * d / expected
	}
	// 4 degrees of freedom: P(chi2 > 23.5) < 1e-4.
	if chi2 > 23.5 {
		t.Fatalf("chi-square %v too large; counts %v", chi2, counts)
	}
}

func TestAliasMatchesWeightsProperty(t *testing.T) {
	f := func(raw [4]uint8) bool {
		weights := make([]float64, 4)
		var sum float64
		for i, v := range raw {
			weights[i] = float64(v%16) + 0.01
			sum += weights[i]
		}
		a, err := NewAlias(weights)
		if err != nil {
			return false
		}
		r := New(uint64(raw[0])<<8 | uint64(raw[1]))
		const trials = 20000
		counts := make([]int, 4)
		for i := 0; i < trials; i++ {
			counts[a.Sample(r)]++
		}
		for i := range weights {
			want := weights[i] / sum
			got := float64(counts[i]) / trials
			if math.Abs(got-want) > 0.03 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
