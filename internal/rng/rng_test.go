package rng

import (
	"math"
	"testing"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/64 collisions between different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	base := New(7)
	s1 := base.Split(1)
	s2 := base.Split(2)
	same := 0
	for i := 0; i < 64; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/64 collisions between split streams", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", v)
		}
	}
}

func TestIntNBounds(t *testing.T) {
	r := New(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("IntN(7) produced only %d distinct values in 1000 draws", len(seen))
	}
}

func TestPermValid(t *testing.T) {
	r := New(11)
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(13)
	vals := []int{0, 1, 2, 3, 4, 5}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, 6)
	for _, v := range vals {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("value %d lost in shuffle: %v", i, vals)
		}
	}
}

func TestCryptoSource(t *testing.T) {
	var c CryptoSource
	for i := 0; i < 100; i++ {
		if v := c.Float64(); v < 0 || v >= 1 {
			t.Fatalf("crypto Float64 = %v", v)
		}
		if v := c.IntN(10); v < 0 || v >= 10 {
			t.Fatalf("crypto IntN(10) = %v", v)
		}
	}
}

func TestCryptoIntNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IntN(0) did not panic")
		}
	}()
	CryptoSource{}.IntN(0)
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		if Bernoulli(r, 0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !Bernoulli(r, 1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(19)
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if Bernoulli(r, 0.3) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %v", rate)
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(23)
	if Binomial(r, 0, 0.5) != 0 {
		t.Error("Binomial(0, ·) != 0")
	}
	if Binomial(r, 10, 0) != 0 {
		t.Error("Binomial(·, 0) != 0")
	}
	if Binomial(r, 10, 1) != 10 {
		t.Error("Binomial(10, 1) != 10")
	}
}

func TestBinomialPanics(t *testing.T) {
	r := New(29)
	for _, bad := range []struct {
		n int
		p float64
	}{{-1, 0.5}, {3, -0.1}, {3, 1.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Binomial(%d, %v) did not panic", bad.n, bad.p)
				}
			}()
			Binomial(r, bad.n, bad.p)
		}()
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(31)
	const n, p, trials = 12, 0.3, 50000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		v := Binomial(r, n, p)
		if v < 0 || v > n {
			t.Fatalf("Binomial out of range: %d", v)
		}
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean-n*p) > 0.05 {
		t.Errorf("mean %v, want %v", mean, n*p)
	}
	if math.Abs(variance-n*p*(1-p)) > 0.15 {
		t.Errorf("variance %v, want %v", variance, n*p*(1-p))
	}
}

func TestTwoSidedGeometricPanics(t *testing.T) {
	r := New(37)
	for _, a := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TwoSidedGeometric(alpha=%v) did not panic", a)
				}
			}()
			TwoSidedGeometric(r, a)
		}()
	}
}

func TestTwoSidedGeometricDistribution(t *testing.T) {
	r := New(41)
	const alpha = 0.6
	const trials = 200000
	counts := map[int]int{}
	for i := 0; i < trials; i++ {
		counts[TwoSidedGeometric(r, alpha)]++
	}
	// Check pmf Pr[delta] = (1-alpha)/(1+alpha) * alpha^|delta| for small
	// |delta| within a few standard errors.
	for delta := -3; delta <= 3; delta++ {
		want := (1 - alpha) / (1 + alpha) * math.Pow(alpha, math.Abs(float64(delta)))
		got := float64(counts[delta]) / trials
		se := math.Sqrt(want*(1-want)/trials) + 1e-9
		if math.Abs(got-want) > 6*se+0.002 {
			t.Errorf("Pr[%d] = %v, want %v", delta, got, want)
		}
	}
	// Symmetry of positive and negative tails.
	var pos, neg int
	for d, c := range counts {
		if d > 0 {
			pos += c
		}
		if d < 0 {
			neg += c
		}
	}
	if math.Abs(float64(pos-neg))/trials > 0.01 {
		t.Errorf("tails unbalanced: +%d vs -%d", pos, neg)
	}
}

func TestGeometricNoiseClamps(t *testing.T) {
	r := New(43)
	const n = 4
	for i := 0; i < 10000; i++ {
		out := GeometricNoise(r, i%(n+1), n, 0.9)
		if out < 0 || out > n {
			t.Fatalf("GeometricNoise out of range: %d", out)
		}
	}
}

func TestGeometricNoiseMatchesMechanism(t *testing.T) {
	// Empirical Pr[output|input] from GeometricNoise must match the
	// truncated geometric closed form x·alpha^j on the boundary row.
	r := New(47)
	const n, alpha, trials = 3, 0.5, 200000
	counts := make([]int, n+1)
	for i := 0; i < trials; i++ {
		counts[GeometricNoise(r, 1, n, alpha)]++
	}
	x := 1 / (1 + alpha)
	y := (1 - alpha) / (1 + alpha)
	want := []float64{x * alpha, y, y * alpha, x * alpha * alpha}
	for i, w := range want {
		got := float64(counts[i]) / trials
		if math.Abs(got-w) > 0.01 {
			t.Errorf("Pr[%d|1] = %v, want %v", i, got, w)
		}
	}
}
