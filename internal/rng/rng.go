// Package rng supplies the randomness substrate for privcount: seeded,
// reproducible pseudo-random sources for experiments and a crypto-quality
// source for production use of differentially private mechanisms, together
// with the distribution samplers the paper's mechanisms and workloads need
// (Bernoulli, Binomial, two-sided geometric, categorical via alias tables).
//
// Experiments in the paper are repeated 30–50 times with error bars; every
// sampler here is deterministic given a Source seed so that experiment
// output is reproducible run-to-run.
package rng

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	mathrand "math/rand/v2"
)

// Source produces uniform random values. It is satisfied by *Rand below
// and by CryptoSource.
type Source interface {
	// Float64 returns a uniform value in [0, 1).
	Float64() float64
	// Uint64 returns a uniform 64-bit value.
	Uint64() uint64
	// IntN returns a uniform value in [0, n). It panics if n <= 0.
	IntN(n int) int
}

// Rand is a seeded, reproducible source backed by math/rand/v2's PCG
// generator. It is not safe for concurrent use; create one per goroutine
// (Split derives independent streams).
type Rand struct {
	r  *mathrand.Rand
	id uint64
}

// New returns a reproducible source seeded from seed.
func New(seed uint64) *Rand {
	return &Rand{r: mathrand.New(mathrand.NewPCG(seed, seed^0x9e3779b97f4a7c15)), id: seed}
}

// StreamID identifies the source's stream: the seed for New, the mint
// number for Pool-minted sources. Concurrent consumers use it to stripe
// per-stream state (e.g. statistics counters) without contention.
func (r *Rand) StreamID() uint64 { return r.id }

// Split derives an independent stream from r, keyed by id. Two Splits of
// the same source with different ids produce uncorrelated streams, which
// lets parallel experiment repetitions share one master seed.
func (r *Rand) Split(id uint64) *Rand {
	hi := r.r.Uint64()
	return &Rand{r: mathrand.New(mathrand.NewPCG(hi^id, id*0xbf58476d1ce4e5b9+1))}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Uint64 returns a uniform 64-bit value.
func (r *Rand) Uint64() uint64 { return r.r.Uint64() }

// IntN returns a uniform value in [0, n).
func (r *Rand) IntN(n int) int { return r.r.IntN(n) }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.r.Perm(n) }

// Shuffle randomises the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.r.Shuffle(n, swap) }

// CryptoSource is a Source backed by crypto/rand. It is safe for
// concurrent use and suitable for releasing real data under differential
// privacy, where a predictable PRNG would undermine the guarantee.
type CryptoSource struct{}

// Uint64 returns a uniform 64-bit value from the operating system CSPRNG.
// It panics if the system source fails, as no meaningful recovery exists.
func (CryptoSource) Uint64() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("rng: crypto source failed: %v", err))
	}
	return binary.LittleEndian.Uint64(b[:])
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (c CryptoSource) Float64() float64 {
	return float64(c.Uint64()>>11) / (1 << 53)
}

// IntN returns a uniform value in [0, n) by rejection sampling.
func (c CryptoSource) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN with non-positive n")
	}
	max := ^uint64(0) - ^uint64(0)%uint64(n)
	for {
		v := c.Uint64()
		if v < max {
			return int(v % uint64(n))
		}
	}
}

// Bernoulli returns true with probability p using src.
func Bernoulli(src Source, p float64) bool {
	return src.Float64() < p
}

// Binomial draws from Binomial(n, p) by inversion on the CDF, which is
// exact and fast for the group sizes used in the paper (n up to a few
// hundred). It panics if n < 0 or p is outside [0, 1].
func Binomial(src Source, n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial with negative n")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("rng: Binomial with p=%v outside [0,1]", p))
	}
	if n == 0 || p == 0 {
		return 0
	}
	if p == 1 {
		return n
	}
	// Inversion: walk the pmf ratio Pr[k+1]/Pr[k] = (n-k)/(k+1) · p/(1-p).
	u := src.Float64()
	q := 1 - p
	ratio := p / q
	// Pr[0] = q^n; accumulate until the CDF passes u.
	pk := 1.0
	for i := 0; i < n; i++ {
		pk *= q
	}
	cdf := pk
	k := 0
	for cdf < u && k < n {
		pk *= ratio * float64(n-k) / float64(k+1)
		cdf += pk
		k++
	}
	return k
}

// TwoSidedGeometric draws δ with Pr[δ] = (1−α)·α^|δ| / (1+α) for δ ∈ ℤ,
// the noise distribution of the truncated Geometric mechanism (Def 4 of
// the paper). It panics unless 0 < alpha < 1.
func TwoSidedGeometric(src Source, alpha float64) int {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("rng: TwoSidedGeometric with alpha=%v outside (0,1)", alpha))
	}
	// Magnitude |δ| has Pr[0] = (1−α)/(1+α) and Pr[m] = 2α^m(1−α)/(1+α)
	// for m ≥ 1. Sample by inversion on the geometric tail, then a sign.
	u := src.Float64()
	p0 := (1 - alpha) / (1 + alpha)
	if u < p0 {
		return 0
	}
	// Conditioned on δ ≠ 0, |δ| is Geometric(1−α) on {1, 2, ...} and the
	// sign is uniform.
	m := 1
	rem := (u - p0) / (1 - p0) // uniform in [0,1)
	// Split the sign first to keep inversion one-dimensional.
	neg := rem < 0.5
	if neg {
		rem *= 2
	} else {
		rem = (rem - 0.5) * 2
	}
	cdf := 1 - alpha
	pk := 1 - alpha
	for cdf < rem && m < 1<<20 {
		pk *= alpha
		cdf += pk
		m++
	}
	if neg {
		return -m
	}
	return m
}

// GeometricNoise applies two-sided geometric noise to value and clamps to
// [0, n] — exactly the paper's truncated Geometric mechanism applied to a
// true count. It is provided so callers can sample GM without
// materialising its matrix.
func GeometricNoise(src Source, value, n int, alpha float64) int {
	out := value + TwoSidedGeometric(src, alpha)
	if out < 0 {
		return 0
	}
	if out > n {
		return n
	}
	return out
}
