package rng

import (
	"sync"
	"sync/atomic"
)

// Pool hands out *Rand instances for concurrent use without a global lock:
// goroutines Get a source, draw from it, and Put it back. Each source that
// the pool mints receives its own statistically independent stream derived
// from the pool seed and a mint counter, so two goroutines never share a
// generator and a fixed pool seed keeps every stream reproducible (though
// the assignment of streams to goroutines is scheduling-dependent — use an
// explicit seeded Rand when draws must replay exactly).
//
// The serving layer keeps one Pool per cache shard so that sampling under
// load never contends on a shared generator.
type Pool struct {
	seed uint64
	ctr  atomic.Uint64
	pool sync.Pool
}

// NewPool returns a pool whose minted sources derive from seed. Pass 0 to
// seed from the operating system CSPRNG, the right choice when releases
// must be unpredictable.
func NewPool(seed uint64) *Pool {
	if seed == 0 {
		seed = CryptoSource{}.Uint64() | 1 // avoid the sentinel
	}
	p := &Pool{seed: seed}
	p.pool.New = func() any {
		id := p.ctr.Add(1)
		// splitmix-style mixing keeps streams for nearby ids uncorrelated.
		z := p.seed + id*0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r := New(z ^ (z >> 31))
		r.id = id
		return r
	}
	return p
}

// Get returns a source for the calling goroutine's exclusive use until Put.
func (p *Pool) Get() *Rand { return p.pool.Get().(*Rand) }

// Put returns a source obtained from Get; the source must not be used
// after Put.
func (p *Pool) Put(r *Rand) { p.pool.Put(r) }

// Minted returns how many distinct sources the pool has created so far;
// it is a diagnostic, roughly tracking peak concurrency.
func (p *Pool) Minted() uint64 { return p.ctr.Load() }
