package rng

import (
	"fmt"
	"math"
)

// Alias samples from a fixed discrete distribution in O(1) per draw using
// Vose's alias method. Mechanisms use one Alias table per input column so
// that running an experiment over millions of groups stays cheap.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table for the given weights. Weights must be
// non-negative, finite, and have a positive sum; they need not be
// normalised.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("rng: NewAlias: empty weight vector")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("rng: NewAlias: weight %d is %v", i, w)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("rng: NewAlias: weights sum to %v, want > 0", sum)
	}

	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, s := range scaled {
		if s < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[l] = scaled[l]
		a.alias[l] = g
		scaled[g] = (scaled[g] + scaled[l]) - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	// Whatever remains is 1 up to rounding.
	for _, g := range large {
		a.prob[g] = 1
		a.alias[g] = g
	}
	for _, l := range small {
		a.prob[l] = 1
		a.alias[l] = l
	}
	return a, nil
}

// N returns the number of outcomes.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws one outcome index using src.
func (a *Alias) Sample(src Source) int {
	i := src.IntN(len(a.prob))
	if src.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
