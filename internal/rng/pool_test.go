package rng

import (
	"sync"
	"testing"
)

func TestPoolStreamsIndependent(t *testing.T) {
	p := NewPool(123)
	a, b := p.Get(), p.Get()
	if a == b {
		t.Fatal("pool handed out the same source twice without Put")
	}
	// The two streams must not be identical.
	same := true
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two minted sources produced identical streams")
	}
	p.Put(a)
	p.Put(b)
}

func TestPoolReproducibleStreams(t *testing.T) {
	// Same pool seed => the k-th minted source has the same stream.
	p1, p2 := NewPool(77), NewPool(77)
	r1, r2 := p1.Get(), p2.Get()
	for i := 0; i < 8; i++ {
		if v1, v2 := r1.Uint64(), r2.Uint64(); v1 != v2 {
			t.Fatalf("draw %d differs across identically seeded pools: %d vs %d", i, v1, v2)
		}
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool(0)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r := p.Get()
				_ = r.Float64()
				p.Put(r)
			}
		}()
	}
	wg.Wait()
	if p.Minted() == 0 {
		t.Fatal("pool minted no sources")
	}
}
