package figures

import (
	"fmt"
	"math"

	"privcount/internal/core"
	"privcount/internal/dataset"
	"privcount/internal/design"
	"privcount/internal/experiment"
	"privcount/internal/rng"
)

// Further studies beyond the paper's evaluation: the minimax objective
// of Definition 3 (⊕ = max) and the privacy-budget composition question
// raised by using these mechanisms repeatedly.

func init() {
	register("minimax", "Ablation: minimax (worst-input) objective vs expected loss", minimaxFigure)
	register("composition", "Ablation: one strong release vs k composed weak releases", compositionFigure)
}

// minimaxFigure compares designs optimised for the average input against
// designs optimised for the worst input, on both metrics.
func minimaxFigure(o Options) (*Figure, error) {
	f := &Figure{ID: "minimax", Title: "Average vs minimax design (L1 penalty)"}
	const alpha = 0.8
	maxN := 10
	if o.Quick {
		maxN = 6
	}
	t := &experiment.Table{Title: f.Title, XLabel: "n", YLabel: "expected |error|"}
	avgMean := experiment.Series{Label: "avg-design mean"}
	avgWorst := experiment.Series{Label: "avg-design worst-input"}
	mmMean := experiment.Series{Label: "minimax-design mean"}
	mmWorst := experiment.Series{Label: "minimax-design worst-input"}
	for n := 2; n <= maxN; n++ {
		avg, err := design.Solve(design.Problem{N: n, Alpha: alpha, Objective: design.Objective{P: 1}})
		if err != nil {
			return nil, err
		}
		mm, err := design.SolveMinimax(design.Problem{N: n, Alpha: alpha, Objective: design.Objective{P: 1}})
		if err != nil {
			return nil, err
		}
		am, err := avg.Mechanism.Loss(1, nil)
		if err != nil {
			return nil, err
		}
		aw, err := avg.Mechanism.MaxLoss(1, nil)
		if err != nil {
			return nil, err
		}
		mMean, err := mm.Mechanism.Loss(1, nil)
		if err != nil {
			return nil, err
		}
		mw, err := mm.Mechanism.MaxLoss(1, nil)
		if err != nil {
			return nil, err
		}
		avgMean.Append(float64(n), am, 0)
		avgWorst.Append(float64(n), aw*float64(n+1), 0) // undo w_j for readability
		mmMean.Append(float64(n), mMean, 0)
		mmWorst.Append(float64(n), mw*float64(n+1), 0)
		if mw > aw+1e-9 {
			return nil, fmt.Errorf("figures: minimax: worst-case regression at n=%d", n)
		}
	}
	t.Series = []experiment.Series{avgMean, avgWorst, mmMean, mmWorst}
	f.Tables = append(f.Tables, t)
	f.AddNote("the minimax design trades a slightly higher mean error for a uniformly bounded worst input, the guarantee Gupte–Sundararajan's agents demand")
	return f, nil
}

// compositionFigure measures the composition trade-off: releasing a
// count once at privacy α versus averaging k releases at α^(1/k)
// (which compose to the same overall α).
func compositionFigure(o Options) (*Figure, error) {
	f := &Figure{ID: "composition", Title: "One strong release vs k composed weak releases (EM)"}
	const (
		n     = 8
		alpha = 0.8 // overall privacy budget
	)
	pop := 10000
	reps := 30
	if o.Quick {
		pop = 2000
		reps = 8
	}
	groups, err := dataset.BinomialGroups(pop, n, 0.4, rng.New(o.seed()))
	if err != nil {
		return nil, err
	}
	t := &experiment.Table{Title: f.Title, XLabel: "k releases", YLabel: "RMSE of averaged estimate"}
	s := experiment.Series{Label: fmt.Sprintf("EM, overall alpha=%.2f", alpha)}
	for _, k := range []int{1, 2, 4, 8} {
		perRelease := core.SplitAlpha(alpha, k)
		em, err := core.ExplicitFair(n, perRelease)
		if err != nil {
			return nil, err
		}
		sampler, err := core.NewSampler(em)
		if err != nil {
			return nil, err
		}
		master := rng.New(o.seed() + uint64(k))
		vals := make([]float64, reps)
		for r := 0; r < reps; r++ {
			src := master.Split(uint64(r))
			var sse float64
			for _, truth := range groups.Counts {
				var sum float64
				for rel := 0; rel < k; rel++ {
					sum += float64(sampler.Sample(src, truth))
				}
				d := sum/float64(k) - float64(truth)
				sse += d * d
			}
			vals[r] = math.Sqrt(sse / float64(len(groups.Counts)))
		}
		st := experiment.Summarize(vals)
		s.Append(float64(k), st.Mean, st.StdErr)
		f.AddNote("k=%d: per-release alpha=%.4f, RMSE %.3f ± %.3f", k, perRelease, st.Mean, st.StdErr)
	}
	t.Series = []experiment.Series{s}
	f.Tables = append(f.Tables, t)
	f.AddNote("composition verified: k releases at alpha^(1/k) give the same overall guarantee; averaging them trades per-release noise against range truncation")
	return f, nil
}
