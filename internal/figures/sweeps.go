package figures

import (
	"fmt"

	"privcount/internal/core"
	"privcount/internal/design"
	"privcount/internal/experiment"
)

// This file reproduces the L0 cost sweeps: Figure 8 (weak honesty
// combined with row/column properties) and Figure 9 (the final groups of
// mechanisms with distinct behaviours), plus the Figure 6 summary table
// and the Figure 5 flowchart demonstration.

func init() {
	register("fig5", "Flowchart of properties for the L0 objective", figure5)
	register("fig6", "Properties and L0 costs of the named mechanisms", figure6)
	register("fig8a", "Combinations of properties with weak honesty: varying group size", figure8a)
	register("fig8b", "Combinations of properties with weak honesty: varying alpha", figure8b)
	register("fig9", "Final groups of mechanisms with distinct behaviours", figure9)
}

// whCombos are the nine meaningful §V-A property combinations requested
// together with weak honesty (other subsets reduce to these because RM
// implies RH and CM implies CH).
var whCombos = []struct {
	label string
	props core.PropertySet
}{
	{"WH", 0},
	{"WH+RH", core.RowHonesty},
	{"WH+RM", core.RowMonotone},
	{"WH+CH", core.ColumnHonesty},
	{"WH+CM", core.ColumnMonotone},
	{"WH+RH+CH", core.RowHonesty | core.ColumnHonesty},
	{"WH+RH+CM", core.RowHonesty | core.ColumnMonotone},
	{"WH+RM+CH", core.RowMonotone | core.ColumnHonesty},
	{"WH+RM+CM", core.RowMonotone | core.ColumnMonotone},
}

// solveCombo solves one (n, α, props) design LP. Sweeps call it with a
// fixed property set while only α (or n) varies; the design layer keys
// its warm-basis cache on the constraint pattern, so each α step after
// the first re-solves from the previous optimal basis instead of cold.
func solveCombo(n int, alpha float64, extra core.PropertySet) (float64, error) {
	props := core.WeakHonesty | core.Symmetry | extra
	r, err := design.Solve(design.Problem{
		N: n, Alpha: alpha, Props: props, ReduceSymmetry: true,
	})
	if err != nil {
		return 0, err
	}
	return r.Mechanism.L0(), nil
}

// figure8a sweeps group size at alpha = 0.76 (threshold 2a/(1-a) = 6.33).
func figure8a(o Options) (*Figure, error) {
	const alpha = 0.76
	f := &Figure{ID: "fig8a", Title: "WH combinations vs group size, alpha=0.76"}
	t := &experiment.Table{Title: f.Title, XLabel: "n", YLabel: "L0"}

	maxN := 20
	if o.Quick {
		maxN = 10
	}
	for _, combo := range whCombos {
		s := experiment.Series{Label: combo.label}
		for n := 2; n <= maxN; n++ {
			cost, err := solveCombo(n, alpha, combo.props)
			if err != nil {
				return nil, err
			}
			s.Append(float64(n), cost, 0)
		}
		t.Series = append(t.Series, s)
	}
	t.AddNote("GM cost 2a/(1+a) = %.6f; GM gains WH at n >= 2a/(1-a) = %.2f",
		core.GeometricL0(alpha), core.GeometricWeakHonestyThreshold(alpha))
	f.Tables = append(f.Tables, t)

	// The paper's claim: beyond the threshold, WH alone (or with row
	// properties only) hits GM's cost, while column properties cost more.
	whLarge, err := solveCombo(maxN, alpha, 0)
	if err != nil {
		return nil, err
	}
	cmLarge, err := solveCombo(maxN, alpha, core.ColumnMonotone)
	if err != nil {
		return nil, err
	}
	f.AddNote("at n=%d: WH-only cost %.6f (GM: %.6f); WH+CM cost %.6f",
		maxN, whLarge, core.GeometricL0(alpha), cmLarge)
	return f, nil
}

// figure8b sweeps alpha at n = 8.
func figure8b(o Options) (*Figure, error) {
	const n = 8
	f := &Figure{ID: "fig8b", Title: "WH combinations vs alpha, n=8"}
	t := &experiment.Table{Title: f.Title, XLabel: "alpha", YLabel: "L0"}

	alphas := []float64{0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 0.99}
	if o.Quick {
		alphas = []float64{0.5, 0.7, 0.9, 0.99}
	}
	for _, combo := range whCombos {
		s := experiment.Series{Label: combo.label}
		for _, alpha := range alphas {
			cost, err := solveCombo(n, alpha, combo.props)
			if err != nil {
				return nil, err
			}
			s.Append(alpha, cost, 0)
		}
		t.Series = append(t.Series, s)
	}
	t.AddNote("two behaviours: row-only combinations track GM once n >= 2a/(1-a); column combinations track EM")
	f.Tables = append(f.Tables, t)
	return f, nil
}

// figure9 compares GM, WM, EM and UM over group sizes for the paper's
// three alpha settings.
func figure9(o Options) (*Figure, error) {
	f := &Figure{ID: "fig9", Title: "L0 of GM/WM/EM/UM vs group size"}
	alphas := []struct {
		label string
		a     float64
	}{
		{"alpha=2/3", 2.0 / 3.0},
		{"alpha=10/11", 10.0 / 11.0},
		{"alpha=99/100", 0.99},
	}
	maxN := 24
	if o.Quick {
		maxN = 10
	}
	for _, av := range alphas {
		t := &experiment.Table{Title: "Fig 9 " + av.label, XLabel: "n", YLabel: "L0"}
		gm := experiment.Series{Label: "GM"}
		wh := experiment.Series{Label: "WH-LP"}
		wm := experiment.Series{Label: "WM"}
		em := experiment.Series{Label: "EM"}
		um := experiment.Series{Label: "UM"}
		for n := 2; n <= maxN; n++ {
			gm.Append(float64(n), core.GeometricL0(av.a), 0)
			em.Append(float64(n), core.ExplicitFairL0(n, av.a), 0)
			um.Append(float64(n), 1, 0)
			w, err := design.WM(n, av.a)
			if err != nil {
				return nil, err
			}
			wm.Append(float64(n), w.L0(), 0)
			h, err := design.WHOnly(n, av.a)
			if err != nil {
				return nil, err
			}
			wh.Append(float64(n), h.L0(), 0)
		}
		t.Series = []experiment.Series{gm, wh, wm, em, um}
		thr := core.GeometricWeakHonestyThreshold(av.a)
		t.AddNote("the weak-honesty LP meets GM exactly once n >= 2a/(1-a) = %.1f (Lemma 2)", thr)
		f.Tables = append(f.Tables, t)
	}
	f.AddNote("paper: at alpha=2/3 the WH curve sits on GM throughout; at 10/11 they meet at n=20; at 99/100 the constrained curves stay at EM's cost")
	f.AddNote("the paper's single 'WM' curve follows the WH-LP in its convergence claims; the WH+RM+CM mechanism keeps a small column-monotonicity premium above GM (Lemma 3: GM is not CM for alpha > 1/2)")
	return f, nil
}

// figure6 reproduces the named-mechanism summary table.
func figure6(o Options) (*Figure, error) {
	f := &Figure{ID: "fig6", Title: "Properties of named mechanisms (n=8, alpha=0.9)"}
	const n, alpha = 8, 0.9
	gm, err := core.Geometric(n, alpha)
	if err != nil {
		return nil, err
	}
	wm, err := design.WM(n, alpha)
	if err != nil {
		return nil, err
	}
	em, err := core.ExplicitFair(n, alpha)
	if err != nil {
		return nil, err
	}
	um, err := core.Uniform(n)
	if err != nil {
		return nil, err
	}

	checks := []struct {
		label string
		prop  core.PropertySet
	}{
		{"Symmetry (S)", core.Symmetry},
		{"Row Monotone (RM)", core.RowMonotone},
		{"Column Monotone (CM)", core.ColumnMonotone},
		{"Fairness (F)", core.Fairness},
		{"Weak Honesty (WH)", core.WeakHonesty},
	}
	for _, c := range checks {
		row := fmt.Sprintf("%-22s", c.label)
		for _, m := range []*core.Mechanism{gm, wm, em, um} {
			mark := "N"
			if m.Check(c.prop, 1e-7) {
				mark = "Y"
			}
			row += fmt.Sprintf("  %s=%s", m.Name(), mark)
		}
		f.Notes = append(f.Notes, row)
	}
	f.AddNote("%-22s  GM=%.6f  WM=%.6f  EM=%.6f  UM=%.6f", "L0",
		gm.L0(), wm.L0(), em.L0(), um.L0())
	f.AddNote("closed forms: GM 2a/(1+a)=%.6f; EM ~ (n+1)/n * 2a/(1+a)=%.6f; UM 1",
		core.GeometricL0(alpha), float64(n+1)/float64(n)*core.GeometricL0(alpha))
	f.AddNote("paper (Fig 6): GM lacks CM/F (and WH here since n < 2a/(1-a)=%.0f); EM has all; WM has all but F",
		core.GeometricWeakHonestyThreshold(alpha))
	return f, nil
}

// figure5 demonstrates the decision flowchart on representative requests.
func figure5(o Options) (*Figure, error) {
	f := &Figure{ID: "fig5", Title: "Mechanism choice by requested properties (n=6)"}
	const n = 6
	requests := []core.PropertySet{
		0,
		core.Symmetry | core.RowMonotone,
		core.WeakHonesty,
		core.ColumnHonesty,
		core.ColumnMonotone | core.WeakHonesty,
		core.Fairness,
		core.AllProperties,
	}
	for _, alpha := range []float64{0.45, 0.9} {
		for _, req := range requests {
			choice, err := design.Choose(n, alpha, req)
			if err != nil {
				return nil, err
			}
			if v := choice.Mechanism.Violation(req, 1e-7); v != "" {
				return nil, fmt.Errorf("figures: fig5: choice %s for %s violates request: %s",
					choice.Mechanism.Name(), core.PropertySetString(req), v)
			}
			f.AddNote("alpha=%.2f want=%-12s -> %-6s (%s), L0=%.6f",
				alpha, core.PropertySetString(req), choice.Mechanism.Name(), choice.Rule,
				choice.Mechanism.L0())
		}
	}
	return f, nil
}
