package figures

import (
	"fmt"

	"privcount/internal/core"
	"privcount/internal/dataset"
	"privcount/internal/design"
	"privcount/internal/experiment"
	"privcount/internal/rng"
)

// This file implements studies beyond the paper's figures: the
// output-side DP constraint the concluding remarks propose, constrained
// design under L1/L2 objectives (the paper's "initial results for other
// objectives"), a comparison of the §II-B off-the-shelf mechanisms, and
// the downstream-estimator study motivated by the paper's MLE argument.

func init() {
	register("odp", "Ablation: output-side DP constraint (concluding remarks)", ablationODP)
	register("l1l2", "Ablation: constrained design under L1 and L2 objectives", ablationL1L2)
	register("offtheshelf", "Comparators: KRR, exponential and truncated-Laplace mechanisms", offTheShelf)
	register("estimators", "Downstream estimators: raw output vs MLE vs unbiased debiasing", estimators)
}

// ablationODP measures what the extra output-side ratio constraint costs
// on top of WM's property set.
func ablationODP(o Options) (*Figure, error) {
	f := &Figure{ID: "odp", Title: "Cost of the output-side DP constraint"}
	t := &experiment.Table{Title: f.Title, XLabel: "n", YLabel: "L0"}
	const alpha = 0.9
	maxN := 12
	if o.Quick {
		maxN = 7
	}
	wmS := experiment.Series{Label: "WM"}
	odpS := experiment.Series{Label: "WM+ODP"}
	emS := experiment.Series{Label: "EM"}
	for n := 2; n <= maxN; n++ {
		wm, err := design.WM(n, alpha)
		if err != nil {
			return nil, err
		}
		r, err := design.Solve(design.Problem{
			N: n, Alpha: alpha, Props: design.WMProps | core.OutputDP, ReduceSymmetry: true,
		})
		if err != nil {
			return nil, err
		}
		em, err := core.ExplicitFair(n, alpha)
		if err != nil {
			return nil, err
		}
		wmS.Append(float64(n), wm.L0(), 0)
		odpS.Append(float64(n), r.Mechanism.L0(), 0)
		emS.Append(float64(n), em.L0(), 0)
	}
	t.Series = []experiment.Series{wmS, odpS, emS}
	f.Tables = append(f.Tables, t)
	f.AddNote("the output-side ratio bound (concluding remarks) adds little on top of WM's constraints; EM satisfies it already")
	return f, nil
}

// ablationL1L2 compares expected absolute and squared error of the named
// mechanisms against fully-constrained LP designs optimised for those
// losses directly.
func ablationL1L2(o Options) (*Figure, error) {
	f := &Figure{ID: "l1l2", Title: "Constrained design under L1/L2"}
	const alpha = 0.62
	maxN := 10
	if o.Quick {
		maxN = 6
	}
	for _, p := range []float64{1, 2} {
		t := &experiment.Table{
			Title:  fmt.Sprintf("expected |error|^%g under uniform prior", p),
			XLabel: "n", YLabel: fmt.Sprintf("E|out-in|^%g", p),
		}
		lpS := experiment.Series{Label: fmt.Sprintf("LP-L%g all-props", p)}
		gmS := experiment.Series{Label: "GM"}
		emS := experiment.Series{Label: "EM"}
		for n := 2; n <= maxN; n++ {
			r, err := design.Solve(design.Problem{
				N: n, Alpha: alpha, Props: core.AllProperties,
				Objective: design.Objective{P: p}, ReduceSymmetry: true,
			})
			if err != nil {
				return nil, err
			}
			gm, err := core.Geometric(n, alpha)
			if err != nil {
				return nil, err
			}
			em, err := core.ExplicitFair(n, alpha)
			if err != nil {
				return nil, err
			}
			lpLoss, err := r.Mechanism.Loss(p, nil)
			if err != nil {
				return nil, err
			}
			gmLoss, err := gm.Loss(p, nil)
			if err != nil {
				return nil, err
			}
			emLoss, err := em.Loss(p, nil)
			if err != nil {
				return nil, err
			}
			lpS.Append(float64(n), lpLoss, 0)
			gmS.Append(float64(n), gmLoss, 0)
			emS.Append(float64(n), emLoss, 0)
			if v := r.Mechanism.Violation(core.AllProperties, 1e-6); v != "" {
				return nil, fmt.Errorf("figures: l1l2: constrained L%g design violates properties: %s", p, v)
			}
		}
		t.Series = []experiment.Series{lpS, gmS, emS}
		f.Tables = append(f.Tables, t)
	}
	f.AddNote("the constrained L1/L2 designs avoid Figure 1's degeneracy while staying close to EM's error")
	return f, nil
}

// offTheShelf compares the §II-B mechanisms against GM and EM on the
// rescaled L0 score and on the L0,1 tail.
func offTheShelf(o Options) (*Figure, error) {
	f := &Figure{ID: "offtheshelf", Title: "Off-the-shelf mechanisms vs explicit constructions"}
	const alpha = 0.9
	t := &experiment.Table{Title: f.Title, XLabel: "n", YLabel: "L0"}
	maxN := 12
	if o.Quick {
		maxN = 8
	}
	build := map[string]func(n int) (*core.Mechanism, error){
		"GM":  func(n int) (*core.Mechanism, error) { return core.Geometric(n, alpha) },
		"EM":  func(n int) (*core.Mechanism, error) { return core.ExplicitFair(n, alpha) },
		"KRR": func(n int) (*core.Mechanism, error) { return core.KRR(n, alpha) },
		"EXP": func(n int) (*core.Mechanism, error) { return core.Exponential(n, alpha, nil) },
		"LAP": func(n int) (*core.Mechanism, error) { return core.TruncatedLaplace(n, alpha) },
	}
	order := []string{"GM", "EM", "KRR", "EXP", "LAP"}
	for _, name := range order {
		s := experiment.Series{Label: name}
		for n := 2; n <= maxN; n++ {
			m, err := build[name](n)
			if err != nil {
				return nil, err
			}
			s.Append(float64(n), m.L0(), 0)
		}
		t.Series = append(t.Series, s)
	}
	f.Tables = append(f.Tables, t)

	// All of them must actually satisfy alpha-DP.
	for _, name := range order {
		m, err := build[name](8)
		if err != nil {
			return nil, err
		}
		if !m.SatisfiesDP(alpha, 1e-9) {
			return nil, fmt.Errorf("figures: offtheshelf: %s violates DP: %s", name, m.DPViolation(alpha, 1e-9))
		}
		f.AddNote("%s at n=8: L0=%.4f, tightest alpha=%.4f, properties: %s",
			name, m.L0(), m.DPAlpha(), core.PropertySetString(m.SatisfiedProperties(1e-9)))
	}
	f.AddNote("the exponential mechanism's factor-2 slack (Eq 2) shows as a much larger effective alpha than requested")
	return f, nil
}

// estimators studies downstream decoding: raw mechanism outputs versus
// MLE decoding and the linear unbiased estimator, on a Binomial workload.
func estimators(o Options) (*Figure, error) {
	f := &Figure{ID: "estimators", Title: "Downstream estimation from mechanism outputs"}
	const n, alpha = 8, 0.9
	pop := 10000
	reps := 30
	if o.Quick {
		pop = 2000
		reps = 8
	}
	ms, err := namedMechanisms(n, alpha)
	if err != nil {
		return nil, err
	}
	t := &experiment.Table{Title: f.Title, XLabel: "p", YLabel: "RMSE"}
	for _, m := range ms {
		if m.Name() == "UM" {
			continue // UM is non-invertible and carries no signal
		}
		raw := experiment.Series{Label: m.Name() + " raw"}
		mle := experiment.Series{Label: m.Name() + " mle"}
		for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			groups, err := dataset.BinomialGroups(pop, n, p, rng.New(o.seed()^uint64(p*100)))
			if err != nil {
				return nil, err
			}
			stRaw, err := experiment.RunParallel(m, groups, experiment.RMSE, reps, o.seed(), 0)
			if err != nil {
				return nil, err
			}
			table := m.MLETable()
			mleMetric := func(truths, outputs []int) float64 {
				decoded := make([]int, len(outputs))
				for i, out := range outputs {
					decoded[i] = table[out]
				}
				return experiment.RMSE(truths, decoded)
			}
			stMLE, err := experiment.RunParallel(m, groups, mleMetric, reps, o.seed(), 0)
			if err != nil {
				return nil, err
			}
			raw.Append(p, stRaw.Mean, stRaw.StdErr)
			mle.Append(p, stMLE.Mean, stMLE.StdErr)
		}
		t.Series = append(t.Series, raw, mle)

		est, err := m.UnbiasedEstimator()
		if err != nil {
			f.AddNote("%s: no unbiased estimator (%v)", m.Name(), err)
			continue
		}
		variances, err := m.EstimatorVariance(est)
		if err != nil {
			return nil, err
		}
		var worst float64
		for _, v := range variances {
			if v > worst {
				worst = v
			}
		}
		f.AddNote("%s: unbiased estimator exists; worst per-input variance %.3f (bias of raw output: max %.3f)",
			m.Name(), worst, m.MaxAbsBias())
	}
	f.Tables = append(f.Tables, t)
	f.AddNote("for column-honest mechanisms the MLE decode is the identity, matching the paper's motivation for L0")
	return f, nil
}
