// Package figures reproduces every table and figure of the paper's
// evaluation, one builder per artefact. Builders return structured data
// (tables of series, heatmaps, and notes) that the experiment CLI prints
// and the repository benchmarks execute; EXPERIMENTS.md records the
// paper-versus-measured comparison for each.
package figures

import (
	"fmt"
	"sort"
	"strings"

	"privcount/internal/experiment"
	"privcount/internal/mat"
)

// Heatmap is one labelled probability-matrix panel.
type Heatmap struct {
	Label string
	M     *mat.Dense
}

// Figure is the result of reproducing one paper artefact.
type Figure struct {
	ID       string
	Title    string
	Tables   []*experiment.Table
	Heatmaps []Heatmap
	Notes    []string
}

// AddNote appends a formatted annotation to the figure.
func (f *Figure) AddNote(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Options tunes figure reproduction.
type Options struct {
	// Quick trims parameter sweeps and repetition counts so the full
	// registry runs in seconds; full runs match the paper's settings.
	Quick bool
	// Seed is the master random seed; 0 selects 1.
	Seed uint64
	// AdultPath optionally points at a real UCI `adult.data` file for the
	// Figure 10 experiment; empty selects the calibrated synthetic
	// generator documented in DESIGN.md.
	AdultPath string
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Builder constructs one figure.
type Builder func(Options) (*Figure, error)

type entry struct {
	id      string
	title   string
	builder Builder
}

var registry []entry

func register(id, title string, b Builder) {
	registry = append(registry, entry{id: id, title: title, builder: b})
}

// IDs lists registered figure identifiers in registration (paper) order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Titles maps figure IDs to their one-line descriptions.
func Titles() map[string]string {
	out := make(map[string]string, len(registry))
	for _, e := range registry {
		out[e.id] = e.title
	}
	return out
}

// Build reproduces the identified figure.
func Build(id string, o Options) (*Figure, error) {
	for _, e := range registry {
		if e.id == id {
			return e.builder(o)
		}
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("figures: unknown figure %q (known: %s)", id, strings.Join(known, ", "))
}

// BuildAll reproduces every registered figure in order.
func BuildAll(o Options) ([]*Figure, error) {
	out := make([]*Figure, 0, len(registry))
	for _, e := range registry {
		f, err := e.builder(o)
		if err != nil {
			return nil, fmt.Errorf("figures: %s: %w", e.id, err)
		}
		out = append(out, f)
	}
	return out, nil
}
