package figures

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// quickOpts trims sweeps so the whole registry builds in test time.
var quickOpts = Options{Quick: true, Seed: 1}

func TestBuildUnknownFigure(t *testing.T) {
	if _, err := Build("nope", quickOpts); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestIDsAndTitlesConsistent(t *testing.T) {
	ids := IDs()
	if len(ids) < 15 {
		t.Fatalf("only %d figures registered", len(ids))
	}
	titles := Titles()
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate figure id %s", id)
		}
		seen[id] = true
		if titles[id] == "" {
			t.Errorf("figure %s has no title", id)
		}
	}
}

func TestEveryFigureBuildsInQuickMode(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			f, err := Build(id, quickOpts)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if f.ID != id {
				t.Errorf("figure reports ID %q", f.ID)
			}
			if len(f.Tables) == 0 && len(f.Heatmaps) == 0 && len(f.Notes) == 0 {
				t.Error("figure produced no content")
			}
		})
	}
}

func TestFigure1ReportsPathologies(t *testing.T) {
	f, err := Build("fig1", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	notes := strings.Join(f.Notes, "\n")
	if !strings.Contains(notes, "gaps") {
		t.Errorf("fig1 notes missing gap report:\n%s", notes)
	}
	if len(f.Heatmaps) != 5 {
		t.Errorf("fig1 has %d heatmaps, want 5", len(f.Heatmaps))
	}
	// The paper's three headline spike claims must reproduce at the
	// documented settings.
	checks := []string{
		"Pr[report 2 or 5] >= 0.7",
		"always reports 2",
		"Pr[report 1 or 4] >= 0.900",
	}
	for _, want := range checks {
		found := false
		for _, n := range f.Notes {
			if strings.Contains(n, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fig1 notes missing %q:\n%s", want, notes)
		}
	}
}

func TestFigure2RemovesGaps(t *testing.T) {
	f, err := Build("fig2", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, note := range f.Notes {
		if strings.Contains(note, "UNEXPECTED") {
			t.Errorf("constrained design still has gaps: %s", note)
		}
	}
}

func TestFigure7TruthProbabilities(t *testing.T) {
	f, err := Build("fig7", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's numbers: GM 0.238, EM 0.224 (we match within 0.01).
	var gmPr, emPr float64
	for _, note := range f.Notes {
		var v float64
		if n, _ := fmtSscanf(note, "GM: uniform-prior truth probability %f", &v); n == 1 {
			gmPr = v
		}
		if n, _ := fmtSscanf(note, "EM: uniform-prior truth probability %f", &v); n == 1 {
			emPr = v
		}
	}
	if math.Abs(gmPr-0.238) > 0.01 {
		t.Errorf("GM truth probability %v, paper 0.238", gmPr)
	}
	if math.Abs(emPr-0.224) > 0.01 {
		t.Errorf("EM truth probability %v, paper 0.224", emPr)
	}
	if gmPr <= emPr {
		t.Error("GM should maximise truth probability over EM")
	}
}

func TestFigure9SandwichHolds(t *testing.T) {
	f, err := Build("fig9", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range f.Tables {
		gm := tab.SeriesByLabel("GM")
		wh := tab.SeriesByLabel("WH-LP")
		wm := tab.SeriesByLabel("WM")
		em := tab.SeriesByLabel("EM")
		um := tab.SeriesByLabel("UM")
		if gm == nil || wh == nil || wm == nil || em == nil || um == nil {
			t.Fatalf("%s: missing series", tab.Title)
		}
		for i := range gm.X {
			ordered := gm.Y[i] <= wh.Y[i]+1e-7 && wh.Y[i] <= wm.Y[i]+1e-7 &&
				wm.Y[i] <= em.Y[i]+1e-7 && em.Y[i] <= um.Y[i]+1e-7
			if !ordered {
				t.Errorf("%s: sandwich violated at n=%v: GM=%v WH=%v WM=%v EM=%v UM=%v",
					tab.Title, gm.X[i], gm.Y[i], wh.Y[i], wm.Y[i], em.Y[i], um.Y[i])
			}
		}
	}
}

func TestExample1RatioNearEighteen(t *testing.T) {
	f, err := Build("ex1", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, note := range f.Notes {
		var ratio float64
		if n, _ := fmtSscanf(note, "truth at input 1 is %fx less likely", &ratio); n == 1 {
			found = true
			if math.Abs(ratio-18) > 1 {
				t.Errorf("ratio %v, paper says eighteen", ratio)
			}
		}
	}
	if !found {
		t.Error("ex1 did not report the 18x ratio")
	}
}

func TestSubsetsCollapse(t *testing.T) {
	f, err := Build("subsets", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, note := range f.Notes {
		if strings.Contains(note, "collapse to") && !strings.Contains(note, "collapse to 1 ") {
			// the builder itself errors if classes > 4; presence of the
			// note means the check ran.
			return
		}
	}
	t.Error("subsets figure missing collapse note")
}

func TestFigure10SeriesComplete(t *testing.T) {
	f, err := Build("fig10", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Tables) != 3 {
		t.Fatalf("fig10 has %d tables, want 3 targets", len(f.Tables))
	}
	for _, tab := range f.Tables {
		if len(tab.Series) != 4 {
			t.Errorf("%s: %d series, want 4 mechanisms", tab.Title, len(tab.Series))
		}
		for _, s := range tab.Series {
			if len(s.X) == 0 {
				t.Errorf("%s/%s: empty series", tab.Title, s.Label)
			}
			for _, y := range s.Y {
				if y < 0 || y > 1 {
					t.Errorf("%s/%s: rate %v outside [0,1]", tab.Title, s.Label, y)
				}
			}
		}
	}
}

// fmtSscanf adapts fmt.Sscanf to tolerate prefixed labels in notes.
func fmtSscanf(s, format string, args ...any) (int, error) {
	// Find the start of the format's fixed prefix within s so notes can
	// carry different prefixes.
	prefix := format
	if i := strings.IndexByte(format, '%'); i >= 0 {
		prefix = format[:i]
	}
	j := strings.Index(s, prefix)
	if j < 0 {
		return 0, nil
	}
	return fmt.Sscanf(s[j:], format, args...)
}
