package figures

import (
	"testing"
)

func TestMinimaxFigureInvariants(t *testing.T) {
	f, err := Build("minimax", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	tab := f.Tables[0]
	avgMean := tab.SeriesByLabel("avg-design mean")
	avgWorst := tab.SeriesByLabel("avg-design worst-input")
	mmMean := tab.SeriesByLabel("minimax-design mean")
	mmWorst := tab.SeriesByLabel("minimax-design worst-input")
	if avgMean == nil || avgWorst == nil || mmMean == nil || mmWorst == nil {
		t.Fatal("missing series")
	}
	for i := range avgMean.X {
		// The average design has the best mean; the minimax design the
		// best worst-input value.
		if avgMean.Y[i] > mmMean.Y[i]+1e-9 {
			t.Errorf("n=%v: avg design mean %v worse than minimax %v",
				avgMean.X[i], avgMean.Y[i], mmMean.Y[i])
		}
		if mmWorst.Y[i] > avgWorst.Y[i]+1e-9 {
			t.Errorf("n=%v: minimax worst %v worse than avg design %v",
				mmWorst.X[i], mmWorst.Y[i], avgWorst.Y[i])
		}
		// Worst-input loss always dominates the mean.
		if mmWorst.Y[i] < mmMean.Y[i]-1e-9 {
			t.Errorf("n=%v: worst %v below mean %v", mmWorst.X[i], mmWorst.Y[i], mmMean.Y[i])
		}
	}
}

func TestCompositionFigureInvariants(t *testing.T) {
	f, err := Build("composition", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	s := f.Tables[0].Series[0]
	if len(s.X) != 4 {
		t.Fatalf("want 4 k-values, got %d", len(s.X))
	}
	for _, y := range s.Y {
		if y <= 0 || y > 10 {
			t.Errorf("implausible RMSE %v", y)
		}
	}
	// Averaging k weaker releases of a truncated-domain mechanism should
	// not be catastrophically worse than the single strong release.
	if s.Y[len(s.Y)-1] > 2*s.Y[0] {
		t.Errorf("k=8 RMSE %v more than doubles k=1 RMSE %v", s.Y[len(s.Y)-1], s.Y[0])
	}
}
