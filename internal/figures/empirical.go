package figures

import (
	"fmt"
	"os"

	"privcount/internal/core"
	"privcount/internal/dataset"
	"privcount/internal/design"
	"privcount/internal/experiment"
	"privcount/internal/rng"
)

// This file reproduces the empirical studies: Figure 10 (Adult dataset),
// Figure 11 (L0,1 on Binomial data), Figure 12 (L0,d histograms) and
// Figure 13 (RMSE).

func init() {
	register("fig10", "Empirical error probability on the Adult dataset, alpha = 0.9", figure10)
	register("fig11", "L0,1 score for Binomial data, n in {4,8,12}, alpha in {0.91,0.67}", figure11)
	register("fig12", "Histograms of L0,d scores for Binomial data, n = 8", figure12)
	register("fig13", "Root mean square error for Binomial data", figure13)
}

// namedMechanisms builds the paper's four comparison mechanisms.
func namedMechanisms(n int, alpha float64) ([]*core.Mechanism, error) {
	gm, err := core.Geometric(n, alpha)
	if err != nil {
		return nil, err
	}
	wm, err := design.WM(n, alpha)
	if err != nil {
		return nil, err
	}
	em, err := core.ExplicitFair(n, alpha)
	if err != nil {
		return nil, err
	}
	um, err := core.Uniform(n)
	if err != nil {
		return nil, err
	}
	return []*core.Mechanism{gm, wm, em, um}, nil
}

// figure10 runs the Adult experiment: for each target attribute and
// group size, the fraction of groups whose noisy count is wrong, with
// error bars over 50 repetitions.
func figure10(o Options) (*Figure, error) {
	const alpha = 0.9
	f := &Figure{ID: "fig10", Title: "Empirical wrong-answer rate on Adult, alpha=0.9"}

	reps := 50
	sizes := []int{2, 3, 4, 5, 6, 7, 8, 9, 10}
	rows := dataset.AdultRows
	if o.Quick {
		reps = 8
		sizes = []int{2, 4, 6}
		rows = 4000
	}
	var records []dataset.AdultRecord
	if o.AdultPath != "" {
		file, err := os.Open(o.AdultPath)
		if err != nil {
			return nil, fmt.Errorf("figures: fig10: %w", err)
		}
		records, err = dataset.LoadAdultCSV(file)
		file.Close()
		if err != nil {
			return nil, fmt.Errorf("figures: fig10: %w", err)
		}
		f.AddNote("dataset: %d real records from %s", len(records), o.AdultPath)
	} else {
		records = dataset.GenerateAdult(rows, rng.New(o.seed()))
	}

	for _, target := range dataset.AllTargets {
		t := &experiment.Table{
			Title:  fmt.Sprintf("Fig 10 estimating %s", target),
			XLabel: "group size", YLabel: "wrong-answer rate",
		}
		series := map[string]*experiment.Series{}
		order := []string{"GM", "WM", "EM", "UM"}
		for _, name := range order {
			series[name] = &experiment.Series{Label: name}
		}
		for _, n := range sizes {
			groups, err := dataset.AdultGroups(records, target, n)
			if err != nil {
				return nil, err
			}
			ms, err := namedMechanisms(n, alpha)
			if err != nil {
				return nil, err
			}
			for _, m := range ms {
				st, err := experiment.RunParallel(m, groups, experiment.WrongRate, reps, o.seed()+uint64(n), 0)
				if err != nil {
					return nil, err
				}
				series[m.Name()].Append(float64(n), st.Mean, st.StdErr)
			}
		}
		for _, name := range order {
			t.Series = append(t.Series, *series[name])
		}
		f.Tables = append(f.Tables, t)
	}
	f.AddNote("paper: GM does worse than uniform guessing on this data; EM is best; WM tracks UM")
	if o.AdultPath == "" {
		f.AddNote("dataset: synthetic Adult-like records (see DESIGN.md substitution table); pass -adult to cmd/experiment to use the real file")
	}
	return f, nil
}

// binomialSettings are the (alpha, n) grid of Figures 11 and 13.
func binomialSettings(quick bool) (alphas []float64, ns []int, ps []float64, reps, pop int) {
	alphas = []float64{0.91, 0.67}
	ns = []int{4, 8, 12}
	ps = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	reps = 30
	pop = 10000
	if quick {
		ns = []int{4, 8}
		ps = []float64{0.1, 0.5, 0.9}
		reps = 8
		pop = 2000
	}
	return
}

// figure11 measures the fraction of groups more than one step off.
func figure11(o Options) (*Figure, error) {
	f := &Figure{ID: "fig11", Title: "L0,1 on Binomial data"}
	alphas, ns, ps, reps, pop := binomialSettings(o.Quick)
	metric := experiment.TailRate(1)
	for _, alpha := range alphas {
		for _, n := range ns {
			t := &experiment.Table{
				Title:  fmt.Sprintf("Fig 11 alpha=%.2f n=%d", alpha, n),
				XLabel: "p", YLabel: "fraction |error| > 1",
			}
			ms, err := namedMechanisms(n, alpha)
			if err != nil {
				return nil, err
			}
			series := make([]experiment.Series, len(ms))
			for i, m := range ms {
				series[i].Label = m.Name()
			}
			for _, p := range ps {
				groups, err := dataset.BinomialGroups(pop, n, p, rng.New(o.seed()^uint64(n*1000)^uint64(p*100)))
				if err != nil {
					return nil, err
				}
				for i, m := range ms {
					st, err := experiment.RunParallel(m, groups, metric, reps, o.seed()+uint64(n), 0)
					if err != nil {
						return nil, err
					}
					series[i].Append(p, st.Mean, st.StdErr)
				}
			}
			t.Series = series
			f.Tables = append(f.Tables, t)
		}
	}
	f.AddNote("paper: GM wins only for extreme p; constrained mechanisms win for proportionate inputs; at lower alpha WM and GM converge")
	return f, nil
}

// figure12 varies the distance threshold d at n = 8.
func figure12(o Options) (*Figure, error) {
	f := &Figure{ID: "fig12", Title: "L0,d on Binomial data, n=8"}
	const n = 8
	reps := 30
	pop := 10000
	if o.Quick {
		reps = 8
		pop = 2000
	}
	ds := []int{0, 1, 2, 3, 4, 5, 6}
	for _, alpha := range []float64{0.91, 0.67} {
		for _, p := range []float64{0.5, 0.1} {
			t := &experiment.Table{
				Title:  fmt.Sprintf("Fig 12 alpha=%.2f p=%.1f (d sweep)", alpha, p),
				XLabel: "d", YLabel: "fraction |error| > d",
			}
			groups, err := dataset.BinomialGroups(pop, n, p, rng.New(o.seed()^uint64(p*1000)))
			if err != nil {
				return nil, err
			}
			ms, err := namedMechanisms(n, alpha)
			if err != nil {
				return nil, err
			}
			series := make([]experiment.Series, len(ms))
			for i, m := range ms {
				series[i].Label = m.Name()
				for _, d := range ds {
					st, err := experiment.RunParallel(m, groups, experiment.TailRate(d), reps, o.seed()+uint64(d), 0)
					if err != nil {
						return nil, err
					}
					series[i].Append(float64(d), st.Mean, st.StdErr)
				}
			}
			t.Series = series
			f.Tables = append(f.Tables, t)
		}
	}
	f.AddNote("paper: with proportionate inputs (p=0.5) EM beats GM and the margin grows with d; skewed inputs (p=0.1) favour GM but EM stays close")
	return f, nil
}

// figure13 measures RMSE with one-standard-deviation error bars.
func figure13(o Options) (*Figure, error) {
	f := &Figure{ID: "fig13", Title: "RMSE on Binomial data"}
	alphas, ns, ps, reps, pop := binomialSettings(o.Quick)
	for _, alpha := range alphas {
		for _, n := range ns {
			t := &experiment.Table{
				Title:  fmt.Sprintf("Fig 13 alpha=%.2f n=%d", alpha, n),
				XLabel: "p", YLabel: "RMSE",
			}
			ms, err := namedMechanisms(n, alpha)
			if err != nil {
				return nil, err
			}
			series := make([]experiment.Series, len(ms))
			for i, m := range ms {
				series[i].Label = m.Name()
			}
			for _, p := range ps {
				groups, err := dataset.BinomialGroups(pop, n, p, rng.New(o.seed()^uint64(n*77)^uint64(p*100)))
				if err != nil {
					return nil, err
				}
				for i, m := range ms {
					st, err := experiment.RunParallel(m, groups, experiment.RMSE, reps, o.seed()+uint64(n), 0)
					if err != nil {
						return nil, err
					}
					// Figure 13 shows one standard deviation.
					series[i].Append(p, st.Mean, st.StdDev)
				}
			}
			t.Series = series
			f.Tables = append(f.Tables, t)
		}
	}
	f.AddNote("paper: at alpha=0.91 EM gives lower error across group sizes and input distributions; GM is frequently worse than UM")
	return f, nil
}
