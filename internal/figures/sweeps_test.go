package figures

import (
	"math"
	"testing"

	"privcount/internal/core"
)

func TestFigure8aTwoBehaviours(t *testing.T) {
	f, err := Build("fig8a", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	tab := f.Tables[0]
	// At each n, WH-only and WH+row-property curves must agree; any
	// column-property curve must agree with every other column curve.
	rowLabels := []string{"WH", "WH+RH", "WH+RM"}
	colLabels := []string{"WH+CH", "WH+CM", "WH+RH+CH", "WH+RH+CM", "WH+RM+CH", "WH+RM+CM"}
	ref := tab.SeriesByLabel("WH")
	colRef := tab.SeriesByLabel("WH+CM")
	if ref == nil || colRef == nil {
		t.Fatal("missing reference series")
	}
	for i := range ref.X {
		for _, l := range rowLabels {
			s := tab.SeriesByLabel(l)
			if s == nil {
				t.Fatalf("missing series %s", l)
			}
			if math.Abs(s.Y[i]-ref.Y[i]) > 1e-6 {
				t.Errorf("n=%v: %s = %v departs from WH curve %v", ref.X[i], l, s.Y[i], ref.Y[i])
			}
		}
		for _, l := range colLabels {
			s := tab.SeriesByLabel(l)
			if s == nil {
				t.Fatalf("missing series %s", l)
			}
			if math.Abs(s.Y[i]-colRef.Y[i]) > 1e-6 {
				t.Errorf("n=%v: %s = %v departs from column curve %v", ref.X[i], l, s.Y[i], colRef.Y[i])
			}
		}
		// The column curve never beats the row curve.
		if colRef.Y[i] < ref.Y[i]-1e-9 {
			t.Errorf("n=%v: column curve %v below WH curve %v", ref.X[i], colRef.Y[i], ref.Y[i])
		}
	}
	// Beyond the Lemma 2 threshold (6.33 at alpha=0.76), the WH curve
	// equals GM's closed-form cost exactly.
	const alpha = 0.76
	gmCost := core.GeometricL0(alpha)
	thr := core.GeometricWeakHonestyThreshold(alpha)
	for i, n := range ref.X {
		if n >= thr && math.Abs(ref.Y[i]-gmCost) > 1e-7 {
			t.Errorf("n=%v >= threshold %.2f: WH cost %v != GM %v", n, thr, ref.Y[i], gmCost)
		}
		if n < thr-1 && ref.Y[i] <= gmCost+1e-9 {
			t.Errorf("n=%v below threshold: WH cost %v should exceed GM %v", n, ref.Y[i], gmCost)
		}
	}
}

func TestFigure8bConvergesAtLowAlpha(t *testing.T) {
	f, err := Build("fig8b", quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	tab := f.Tables[0]
	// At alpha = 0.5 every combination collapses onto GM (Lemma 3 grants
	// column monotonicity for free and Lemma 2 grants weak honesty since
	// n=8 >= 2).
	gmCost := core.GeometricL0(0.5)
	for _, s := range tab.Series {
		if len(s.X) == 0 || s.X[0] != 0.5 {
			t.Fatalf("series %s does not start at alpha=0.5", s.Label)
		}
		if math.Abs(s.Y[0]-gmCost) > 1e-6 {
			t.Errorf("%s at alpha=0.5: %v, want GM %v", s.Label, s.Y[0], gmCost)
		}
	}
}
