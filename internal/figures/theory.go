package figures

import (
	"fmt"
	"math"

	"privcount/internal/core"
	"privcount/internal/design"
	"privcount/internal/experiment"
)

// This file reproduces the paper's analytical results numerically:
// Theorem 1 (symmetrisation), Theorem 3 (GM optimality), Theorem 4 (EM
// optimality among fully-constrained mechanisms), Lemmas 2–4, the §IV-D
// collapse of 128 property subsets, and the Gupte–Sundararajan
// derivability test.

func init() {
	register("thm1", "Theorem 1: symmetrisation preserves properties and objective", theorem1)
	register("thm3", "Theorem 3: GM is the unique BASICDP optimum under L0", theorem3)
	register("thm4", "Theorem 4: EM is optimal among fully-constrained mechanisms", theorem4)
	register("lem23", "Lemmas 2 and 3: GM's weak-honesty and column-monotonicity thresholds", lemmas23)
	register("lem4", "Lemma 4: fair-diagonal upper bound", lemma4)
	register("subsets", "Section IV-D: 128 property subsets collapse to at most 4 behaviours", subsetsFigure)
	register("gs", "Section IV-D: WM and EM are not derivable from GM", gsFigure)
}

func theorem1(o Options) (*Figure, error) {
	f := &Figure{ID: "thm1", Title: "Symmetrisation (Theorem 1)"}
	for _, alpha := range []float64{0.5, 0.76, 0.9} {
		for _, n := range []int{3, 5, 8} {
			// An intentionally asymmetric mechanism: the WH-only LP solved
			// without the symmetry constraint.
			r, err := design.Solve(design.Problem{N: n, Alpha: alpha, Props: core.WeakHonesty})
			if err != nil {
				return nil, err
			}
			m := r.Mechanism
			sym, err := core.Symmetrize(m)
			if err != nil {
				return nil, err
			}
			if !sym.Check(core.Symmetry, 1e-9) {
				return nil, fmt.Errorf("figures: thm1: symmetrised mechanism is not symmetric")
			}
			if !sym.SatisfiesDP(alpha, 1e-9) {
				return nil, fmt.Errorf("figures: thm1: symmetrisation broke differential privacy")
			}
			before := m.SatisfiedProperties(1e-7)
			after := sym.SatisfiedProperties(1e-7)
			if before&^after != 0 {
				return nil, fmt.Errorf("figures: thm1: lost properties %s",
					core.PropertySetString(before&^after))
			}
			f.AddNote("n=%d alpha=%.2f: L0 before %.6f, after %.6f (diff %.1e); props kept: %s",
				n, alpha, m.L0(), sym.L0(), math.Abs(m.L0()-sym.L0()),
				core.PropertySetString(before))
		}
	}
	return f, nil
}

func theorem3(o Options) (*Figure, error) {
	f := &Figure{ID: "thm3", Title: "GM vs unconstrained LP optimum"}
	t := &experiment.Table{Title: f.Title, XLabel: "n", YLabel: "max |LP − GM|"}
	alphas := []float64{0.3, 0.5, 0.62, 0.76, 0.9}
	maxN := 10
	if o.Quick {
		alphas = []float64{0.62, 0.9}
		maxN = 6
	}
	for _, alpha := range alphas {
		s := experiment.Series{Label: fmt.Sprintf("alpha=%.2f", alpha)}
		for n := 2; n <= maxN; n++ {
			lpM, err := design.Unconstrained(n, alpha, 0)
			if err != nil {
				return nil, err
			}
			gm, err := core.Geometric(n, alpha)
			if err != nil {
				return nil, err
			}
			d, err := lpM.Matrix().MaxAbsDiff(gm.Matrix())
			if err != nil {
				return nil, err
			}
			s.Append(float64(n), d, 0)
		}
		t.Series = append(t.Series, s)
	}
	f.Tables = append(f.Tables, t)
	f.AddNote("the LP optimum recovers GM entrywise (uniqueness, Theorem 3); all diffs are solver tolerance")
	return f, nil
}

func theorem4(o Options) (*Figure, error) {
	f := &Figure{ID: "thm4", Title: "EM vs fully-constrained LP optimum"}
	t := &experiment.Table{Title: f.Title, XLabel: "n", YLabel: "L0"}
	alphas := []float64{0.62, 0.9}
	maxN := 12
	if o.Quick {
		maxN = 7
	}
	for _, alpha := range alphas {
		lpSeries := experiment.Series{Label: fmt.Sprintf("LP all-props alpha=%.2f", alpha)}
		emSeries := experiment.Series{Label: fmt.Sprintf("EM alpha=%.2f", alpha)}
		for n := 2; n <= maxN; n++ {
			r, err := design.Solve(design.Problem{
				N: n, Alpha: alpha, Props: core.AllProperties, ReduceSymmetry: true,
			})
			if err != nil {
				return nil, err
			}
			em, err := core.ExplicitFair(n, alpha)
			if err != nil {
				return nil, err
			}
			lpSeries.Append(float64(n), r.Mechanism.L0(), 0)
			emSeries.Append(float64(n), em.L0(), 0)
			if diff := math.Abs(r.Mechanism.L0() - em.L0()); diff > 1e-6 {
				f.AddNote("n=%d alpha=%.2f: LP cost %.8f vs EM %.8f (diff %.1e) — MISMATCH",
					n, alpha, r.Mechanism.L0(), em.L0(), diff)
			}
		}
		t.Series = append(t.Series, lpSeries, emSeries)
	}
	f.Tables = append(f.Tables, t)
	f.AddNote("EM attains the LP optimum under all seven properties (Theorem 4)")
	return f, nil
}

func lemmas23(o Options) (*Figure, error) {
	f := &Figure{ID: "lem23", Title: "GM thresholds (Lemmas 2 and 3)"}
	// Lemma 2: GM is weakly honest iff n >= 2a/(1-a). The lemma's proof
	// focuses on the interior diagonal y, so the search starts at n = 2
	// (at n = 1 both diagonal entries are x >= 1/2 and WH always holds).
	for _, alpha := range []float64{0.5, 0.62, 0.76, 0.9} {
		threshold := core.GeometricWeakHonestyThreshold(alpha)
		firstWH := -1
		for n := 2; n <= 60; n++ {
			gm, err := core.Geometric(n, alpha)
			if err != nil {
				return nil, err
			}
			if gm.Check(core.WeakHonesty, 1e-12) {
				firstWH = n
				break
			}
		}
		want := int(math.Ceil(threshold - 1e-12))
		if want < 2 {
			want = 2
		}
		f.AddNote("alpha=%.2f: GM first weakly honest at n=%d; Lemma 2 predicts ceil(2a/(1-a))=%d",
			alpha, firstWH, want)
		if firstWH != want {
			return nil, fmt.Errorf("figures: lem23: WH threshold mismatch at alpha=%g: got %d want %d",
				alpha, firstWH, want)
		}
	}
	// Lemma 3: GM is column monotone iff alpha <= 1/2.
	for _, alpha := range []float64{0.3, 0.49, 0.5, 0.51, 0.7, 0.9} {
		gm, err := core.Geometric(6, alpha)
		if err != nil {
			return nil, err
		}
		got := gm.Check(core.ColumnMonotone, 1e-12)
		want := alpha <= 0.5
		f.AddNote("alpha=%.2f: GM column monotone = %v (Lemma 3 predicts %v)", alpha, got, want)
		if got != want {
			return nil, fmt.Errorf("figures: lem23: CM threshold mismatch at alpha=%g", alpha)
		}
	}
	return f, nil
}

func lemma4(o Options) (*Figure, error) {
	f := &Figure{ID: "lem4", Title: "Fair diagonal bound (Lemma 4)"}
	t := &experiment.Table{Title: f.Title, XLabel: "n", YLabel: "diagonal y"}
	for _, alpha := range []float64{0.62, 0.9} {
		yS := experiment.Series{Label: fmt.Sprintf("EM y, alpha=%.2f", alpha)}
		bS := experiment.Series{Label: fmt.Sprintf("Lemma 4 bound, alpha=%.2f", alpha)}
		aS := experiment.Series{Label: fmt.Sprintf("(1-a)/(1+a) approx, alpha=%.2f", alpha)}
		for n := 2; n <= 16; n++ {
			y := core.ExplicitFairY(n, alpha)
			bound := core.FairDiagonalBound(n, alpha)
			yS.Append(float64(n), y, 0)
			bS.Append(float64(n), bound, 0)
			aS.Append(float64(n), (1-alpha)/(1+alpha), 0)
			// For even n the bound is exact and attained; for odd n the
			// attainable optimum sits marginally above the real-valued-n/2
			// formula (the paper's noted odd/even difference).
			if n%2 == 0 && math.Abs(y-bound) > 1e-12 {
				return nil, fmt.Errorf("figures: lem4: even-n bound not attained at n=%d alpha=%g", n, alpha)
			}
			if n%2 == 1 && (y < bound-1e-12 || y > core.FairDiagonalBound(n-1, alpha)+1e-12) {
				return nil, fmt.Errorf("figures: lem4: odd-n diagonal %g strays from bounds at n=%d alpha=%g",
					y, n, alpha)
			}
		}
		t.Series = append(t.Series, yS, bS, aS)
	}
	f.Tables = append(f.Tables, t)
	f.AddNote("EM attains Lemma 4's bound exactly for even n; for odd n the attainable diagonal sits marginally above the real-valued-n/2 formula")
	return f, nil
}

func subsetsFigure(o Options) (*Figure, error) {
	f := &Figure{ID: "subsets", Title: "All 128 property subsets, grouped by optimal L0"}
	n := 8
	if o.Quick {
		n = 5
	}
	for _, alpha := range []float64{0.9, 0.62, 0.4} {
		results, classes, err := design.ClassifySubsets(n, alpha, 1e-6)
		if err != nil {
			return nil, err
		}
		classCost := map[int]float64{}
		classCount := map[int]int{}
		classExample := map[int]core.PropertySet{}
		for _, r := range results {
			classCost[r.Class] = r.L0
			classCount[r.Class]++
			if _, ok := classExample[r.Class]; !ok || r.Closure < classExample[r.Class] {
				classExample[r.Class] = r.Closure
			}
		}
		f.AddNote("alpha=%.2f n=%d: %d subsets collapse to %d distinct behaviours (paper: at most 4)",
			alpha, n, len(results), classes)
		for c := 0; c < classes; c++ {
			f.AddNote("  class %d: L0=%.6f, %d subsets, smallest closure: %s",
				c, classCost[c], classCount[c], core.PropertySetString(classExample[c]))
		}
		if classes > 4 {
			return nil, fmt.Errorf("figures: subsets: %d classes at alpha=%g, paper predicts <= 4", classes, alpha)
		}
	}
	return f, nil
}

func gsFigure(o Options) (*Figure, error) {
	f := &Figure{ID: "gs", Title: "Gupte–Sundararajan derivability"}
	for _, alpha := range []float64{0.62, 0.9} {
		for n := 2; n <= 8; n++ {
			gm, err := core.Geometric(n, alpha)
			if err != nil {
				return nil, err
			}
			em, err := core.ExplicitFair(n, alpha)
			if err != nil {
				return nil, err
			}
			wm, err := design.WM(n, alpha)
			if err != nil {
				return nil, err
			}
			gmOK := core.DerivableFromGM(gm, alpha, 1e-9)
			emOK := core.DerivableFromGM(em, alpha, 1e-9)
			wmOK := core.DerivableFromGM(wm, alpha, 1e-9)
			f.AddNote("n=%d alpha=%.2f: GM derivable=%v, EM derivable=%v, WM derivable=%v",
				n, alpha, gmOK, emOK, wmOK)
			if !gmOK {
				return nil, fmt.Errorf("figures: gs: GM fails its own derivability test at n=%d alpha=%g", n, alpha)
			}
			if emOK {
				return nil, fmt.Errorf("figures: gs: EM unexpectedly derivable from GM at n=%d alpha=%g", n, alpha)
			}
		}
	}
	f.AddNote("paper: EM breaks the test for all n > 1 (via Pr[2|0] = Pr[2|1] = ya, Pr[2|2] = y); WM breaks it for n > 1")
	return f, nil
}
