package figures

import (
	"privcount/internal/core"
	"privcount/internal/design"
)

// This file reproduces the heatmap figures: Figure 1 (pathologies of
// unconstrained optima), Figure 2 (the same panels with all structural
// properties enforced), Figure 7 (GM vs EM vs WM at n=4), plus the
// worked Example 1 and the closed-form structure checks of Figures 3/4.

func init() {
	register("fig1", "Heatmaps of unconstrained mechanisms for alpha = 0.62 (gaps and spikes)", figure1)
	register("fig2", "Heatmaps of constrained mechanisms for alpha = 0.62 (pathologies removed)", figure2)
	register("fig3", "Structure of GM: matrix equals the x/y powers-of-alpha closed form", figure3)
	register("fig4", "Explicit fair mechanism for n = 7 matches the published exponent pattern", figure4)
	register("fig7", "Heatmaps for GM, EM, WM with n = 4, alpha = 0.9", figure7)
	register("ex1", "Example 1: GM at n = 2, alpha = 0.9 favours extreme outputs", example1)
}

// fig12Alpha is the privacy parameter in the caption of Figures 1 and 2.
// L_p optima are massively non-unique and the degenerate vertex the
// paper displays for each panel emerges at somewhat higher α (the caption
// parameters yield a different co-optimal vertex with the same gap
// pathology); figure1 therefore reproduces both settings and the notes
// record exactly which phenomenon appears where.
const (
	fig12Alpha = 0.62
	// fig1SpikeAlphaL1 is where the paper's "reports 2 or 5 with >= 0.7"
	// L1 vertex appears; fig1SpikeAlphaL2 where L2 collapses to a
	// constant output; fig1SpikeAlphaL0D where the d=1 loss concentrates
	// over 90% on {1,4}.
	fig1SpikeAlphaL1  = 0.85
	fig1SpikeAlphaL2  = 0.8
	fig1SpikeAlphaL0D = 0.9
)

// figure1 solves the unconstrained LPs of Figure 1 and reports the
// gap/spike pathologies the paper describes.
func figure1(o Options) (*Figure, error) {
	f := &Figure{ID: "fig1", Title: "Unconstrained optima (gaps and spikes)"}

	type panel struct {
		label string
		build func() (*core.Mechanism, error)
	}
	panels := []panel{
		{"L1 n=7 a=0.62", func() (*core.Mechanism, error) { return design.Unconstrained(7, fig12Alpha, 1) }},
		{"L1 n=7 a=0.85", func() (*core.Mechanism, error) { return design.Unconstrained(7, fig1SpikeAlphaL1, 1) }},
		{"L2 n=4 a=0.80", func() (*core.Mechanism, error) { return design.Unconstrained(4, fig1SpikeAlphaL2, 2) }},
		{"L0 d=1 n=5 a=0.90", func() (*core.Mechanism, error) { return design.UnconstrainedL0D(5, fig1SpikeAlphaL0D, 1) }},
		{"L0 n=5 a=0.62", func() (*core.Mechanism, error) { return design.Unconstrained(5, fig12Alpha, 0) }},
	}
	for _, p := range panels {
		m, err := p.build()
		if err != nil {
			return nil, err
		}
		f.Heatmaps = append(f.Heatmaps, Heatmap{Label: p.label, M: m.Matrix()})
		gaps := m.Gaps(1e-9)
		f.AddNote("%s: outputs never reported (gaps): %v", p.label, gaps)
	}

	// The paper's headline observations, verified numerically at the
	// settings where each degenerate vertex is optimal.
	l1, err := design.Unconstrained(7, fig1SpikeAlphaL1, 1)
	if err != nil {
		return nil, err
	}
	min25 := 1.0
	for j := 0; j <= 7; j++ {
		if v := l1.Prob(2, j) + l1.Prob(5, j); v < min25 {
			min25 = v
		}
	}
	f.AddNote("L1 n=7 a=0.85: Pr[report 2 or 5] >= %.3f for every input (paper: at least 0.7)", min25)

	l2, err := design.Unconstrained(4, fig1SpikeAlphaL2, 2)
	if err != nil {
		return nil, err
	}
	colVar := 0.0
	for i := 0; i <= 4; i++ {
		lo, hi := 1.0, 0.0
		for j := 0; j <= 4; j++ {
			v := l2.Prob(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if d := hi - lo; d > colVar {
			colVar = d
		}
	}
	f.AddNote("L2 n=4 a=0.80: optimum ignores its input entirely (max column variation %.1e) and always reports 2 (paper: 'always report 2')", colVar)
	f.AddNote("L2 n=4 a=0.80: Pr[2|j] = %.3f for every j; outputs %v never occur", l2.Prob(2, 0), l2.Gaps(1e-9))

	l0d, err := design.UnconstrainedL0D(5, fig1SpikeAlphaL0D, 1)
	if err != nil {
		return nil, err
	}
	min14 := 1.0
	for j := 0; j <= 5; j++ {
		if v := l0d.Prob(1, j) + l0d.Prob(4, j); v < min14 {
			min14 = v
		}
	}
	f.AddNote("L0 d=1 n=5 a=0.90: Pr[report 1 or 4] >= %.3f for every input (paper: over 90%%)", min14)
	f.AddNote("at the caption's alpha=0.62 the optima are different co-optimal vertices with the same gap pathology (extremes never reported); L_p optima are non-unique")
	return f, nil
}

// figure2 re-solves the same panels with all seven structural properties.
func figure2(o Options) (*Figure, error) {
	f := &Figure{ID: "fig2", Title: "Constrained optima (all properties)"}

	solve := func(n int, alpha, p float64) (*core.Mechanism, error) {
		r, err := design.Solve(design.Problem{
			N: n, Alpha: alpha, Props: core.AllProperties,
			Objective: design.Objective{P: p}, ReduceSymmetry: true,
		})
		if err != nil {
			return nil, err
		}
		return r.Mechanism, nil
	}
	type panel struct {
		label string
		build func() (*core.Mechanism, error)
	}
	panels := []panel{
		{"L1 n=7 a=0.62 (all props)", func() (*core.Mechanism, error) { return solve(7, fig12Alpha, 1) }},
		{"L1 n=7 a=0.85 (all props)", func() (*core.Mechanism, error) { return solve(7, fig1SpikeAlphaL1, 1) }},
		{"L2 n=4 a=0.62 (all props)", func() (*core.Mechanism, error) { return solve(4, fig12Alpha, 2) }},
		{"L0 d=1 n=5 a=0.90 (all props)", func() (*core.Mechanism, error) {
			return design.ConstrainedL0D(5, fig1SpikeAlphaL0D, 1, core.AllProperties|core.Symmetry)
		}},
		{"L0 n=5 a=0.62 (all props)", func() (*core.Mechanism, error) { return solve(5, fig12Alpha, 0) }},
	}
	for _, p := range panels {
		m, err := p.build()
		if err != nil {
			return nil, err
		}
		f.Heatmaps = append(f.Heatmaps, Heatmap{Label: p.label, M: m.Matrix()})
		if gaps := m.Gaps(1e-9); len(gaps) != 0 {
			f.AddNote("%s: UNEXPECTED gaps remain: %v", p.label, gaps)
		} else {
			f.AddNote("%s: no gaps; properties satisfied: %s", p.label,
				core.PropertySetString(m.SatisfiedProperties(1e-7)))
		}
	}

	// Paper: in the constrained L2 case (whose unconstrained optimum
	// ignored its input), every input is now reported within one step
	// with probability at least 2/3.
	l2, err := solve(4, fig12Alpha, 2)
	if err != nil {
		return nil, err
	}
	minNear := 1.0
	for j := 0; j <= 4; j++ {
		var near float64
		for i := 0; i <= 4; i++ {
			if d := i - j; d >= -1 && d <= 1 {
				near += l2.Prob(i, j)
			}
		}
		if near < minNear {
			minNear = near
		}
	}
	f.AddNote("L2 n=4 a=0.62 (all props): Pr[|output−input| <= 1] >= %.3f for every input (paper: at least 2/3)", minNear)
	return f, nil
}

// figure3 confirms GM's closed-form structure (Fig 3) across a grid.
func figure3(o Options) (*Figure, error) {
	f := &Figure{ID: "fig3", Title: "GM structure check"}
	worst := 0.0
	for _, alpha := range []float64{0.25, 0.5, fig12Alpha, 0.9, 0.99} {
		for n := 1; n <= 16; n++ {
			m, err := core.Geometric(n, alpha)
			if err != nil {
				return nil, err
			}
			x := 1 / (1 + alpha)
			y := (1 - alpha) / (1 + alpha)
			for j := 0; j <= n; j++ {
				for i := 0; i <= n; i++ {
					var want float64
					switch i {
					case 0:
						want = x * pow(alpha, j)
					case n:
						want = x * pow(alpha, n-j)
					default:
						want = y * pow(alpha, absInt(i-j))
					}
					if d := abs(m.Prob(i, j) - want); d > worst {
						worst = d
					}
				}
			}
		}
	}
	gm, err := core.Geometric(7, fig12Alpha)
	if err != nil {
		return nil, err
	}
	f.Heatmaps = append(f.Heatmaps, Heatmap{Label: "GM n=7 alpha=0.62", M: gm.Matrix()})
	f.AddNote("max |GM − closed form| over n=1..16, alpha in {0.25,0.5,0.62,0.9,0.99}: %.2e", worst)
	f.AddNote("GM L0 closed form 2a/(1+a) at a=0.62: %.6f; measured: %.6f",
		core.GeometricL0(fig12Alpha), gm.L0())
	return f, nil
}

// figure4 confirms the published EM matrix for n = 7 (Fig 4).
func figure4(o Options) (*Figure, error) {
	f := &Figure{ID: "fig4", Title: "Explicit fair mechanism for n=7"}
	const alpha = 0.9
	em, err := core.ExplicitFair(7, alpha)
	if err != nil {
		return nil, err
	}
	f.Heatmaps = append(f.Heatmaps, Heatmap{Label: "EM n=7 alpha=0.9", M: em.Matrix()})

	// The published exponent pattern, row by row (Fig 4).
	want := [8][8]int{
		{0, 1, 2, 3, 4, 4, 4, 4},
		{1, 0, 1, 2, 3, 3, 3, 3},
		{1, 1, 0, 1, 2, 3, 3, 3},
		{2, 2, 1, 0, 1, 2, 2, 2},
		{2, 2, 2, 1, 0, 1, 2, 2},
		{3, 3, 3, 2, 1, 0, 1, 1},
		{3, 3, 3, 3, 2, 1, 0, 1},
		{4, 4, 4, 4, 3, 2, 1, 0},
	}
	y := core.ExplicitFairY(7, alpha)
	worst := 0.0
	for i := 0; i <= 7; i++ {
		for j := 0; j <= 7; j++ {
			expect := y * pow(alpha, want[i][j])
			if d := abs(em.Prob(i, j) - expect); d > worst {
				worst = d
			}
		}
	}
	f.AddNote("max |EM − published Fig 4 pattern| at n=7: %.2e (y=%.6f)", worst, y)
	f.AddNote("EM satisfies: %s", core.PropertySetString(em.SatisfiedProperties(1e-9)))
	return f, nil
}

// figure7 reproduces the three-panel comparison at n=4, alpha=0.9.
func figure7(o Options) (*Figure, error) {
	f := &Figure{ID: "fig7", Title: "GM vs EM vs WM at n=4, alpha=0.9"}
	const n, alpha = 4, 0.9
	gm, err := core.Geometric(n, alpha)
	if err != nil {
		return nil, err
	}
	em, err := core.ExplicitFair(n, alpha)
	if err != nil {
		return nil, err
	}
	wm, err := design.WM(n, alpha)
	if err != nil {
		return nil, err
	}
	for _, m := range []*core.Mechanism{gm, em, wm} {
		f.Heatmaps = append(f.Heatmaps, Heatmap{Label: m.Name(), M: m.Matrix()})
		tp, err := m.TruthProb(nil)
		if err != nil {
			return nil, err
		}
		f.AddNote("%s: uniform-prior truth probability %.3f", m.Name(), tp)
	}
	f.AddNote("paper reports EM 0.224 and GM 0.238 for this setting")
	f.AddNote("GM mass on extreme outputs (0 and n) for input 2: %.3f; EM: %.3f; WM: %.3f",
		gm.Prob(0, 2)+gm.Prob(n, 2), em.Prob(0, 2)+em.Prob(n, 2), wm.Prob(0, 2)+wm.Prob(n, 2))
	return f, nil
}

// example1 reproduces the worked numbers of Example 1.
func example1(o Options) (*Figure, error) {
	f := &Figure{ID: "ex1", Title: "Example 1: GM at n=2, alpha=0.9"}
	gm, err := core.Geometric(2, 0.9)
	if err != nil {
		return nil, err
	}
	f.Heatmaps = append(f.Heatmaps, Heatmap{Label: "GM n=2 alpha=0.9", M: gm.Matrix()})
	f.AddNote("Pr[0|1] = %.3f (paper ~0.47); Pr[2|1] = %.3f (paper ~0.47); Pr[1|1] = %.3f (paper ~0.05)",
		gm.Prob(0, 1), gm.Prob(2, 1), gm.Prob(1, 1))
	f.AddNote("Pr[0|0] = %.3f (paper ~0.53): truth is far likelier at the extremes", gm.Prob(0, 0))
	f.AddNote("truth at input 1 is %.1fx less likely than an incorrect answer (paper: eighteen times)",
		(gm.Prob(0, 1)+gm.Prob(2, 1))/gm.Prob(1, 1))
	f.AddNote("GM weak honesty threshold 2a/(1-a) = %.1f > n = 2, so GM is not weakly honest here",
		core.GeometricWeakHonestyThreshold(0.9))
	return f, nil
}

func pow(a float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= a
	}
	return out
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
