// Telemetry demonstrates the local-DP corner of the paper (§II-B)
// served through the v2 API and its typed client SDK: each user
// perturbs their own one-bit report with the n = 1 geometric mechanism
// (classic randomized response, as in RAPPOR-style telemetry), the
// reports flow through a privcount server in multiplexed batches — one
// Query round trip carries every collector's batch — and the collector
// debiases the aggregate with one estimate call. No trusted aggregator
// sees a raw bit.
//
// By default the example boots an in-process server so it is
// self-contained; point it at a live daemon with -server:
//
//	go run ./examples/telemetry -users 100000 -rate 0.13 -alpha 0.8
//	go run ./examples/telemetry -server http://localhost:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"

	"privcount"
	"privcount/client"
	"privcount/internal/httpapi"
	"privcount/internal/service"
)

func main() {
	var (
		users      = flag.Int("users", 100000, "number of reporting users")
		rate       = flag.Float64("rate", 0.13, "true fraction of users with the sensitive bit set")
		alpha      = flag.Float64("alpha", 0.8, "per-user privacy parameter")
		seed       = flag.Uint64("seed", 1, "random seed")
		server     = flag.String("server", "", "privcountd base URL; empty boots an in-process server")
		collectors = flag.Int("collectors", 4, "report batches multiplexed into one query")
	)
	flag.Parse()
	if *collectors < 1 || *users < 1 {
		log.Fatalf("need -collectors >= 1 and -users >= 1 (got %d, %d)", *collectors, *users)
	}
	ctx := context.Background()

	baseURL := *server
	if baseURL == "" {
		var stop func()
		var err error
		baseURL, stop, err = startInProcess(*seed)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		fmt.Printf("in-process privcountd at %s\n", baseURL)
	}
	c, err := client.New(baseURL)
	if err != nil {
		log.Fatal(err)
	}

	// The n = 1 geometric mechanism is randomized response: each user
	// holds one bit and the released bit keeps the truth with
	// probability 1/(1+alpha). The spec token is the mechanism's wire
	// identity — create it once, then every query names it by ID.
	spec := privcount.Spec{Kind: privcount.SpecGeometric, N: 1, Alpha: *alpha}
	fmt.Printf("mechanism id: %s\n", spec.ID())
	if _, err := c.Create(ctx, spec); err != nil {
		log.Fatal(err)
	}
	st, err := c.WaitReady(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	pTruth := 1 / (1 + *alpha)
	fmt.Printf("mechanism: %s (truth kept with probability %.4f, alpha=%.2f)\n",
		st.Mechanism.Name, pTruth, *alpha)

	// Simulate the user population: each holds a private bit.
	src := privcount.NewRand(*seed)
	bits := make([]int, *users)
	trueOnes := 0
	for u := range bits {
		if src.Float64() < *rate {
			bits[u] = 1
		}
		trueOnes += bits[u]
	}

	// Each collector perturbs its users' bits server-side in one batch
	// op; the ops for every collector share a single multiplexed round
	// trip. Seeded draws keep the run reproducible.
	ops := make([]client.Op, 0, *collectors)
	per := (*users + *collectors - 1) / *collectors
	for i := 0; i < *collectors; i++ {
		lo, hi := i*per, min((i+1)*per, *users)
		if lo >= hi {
			break
		}
		s := *seed + uint64(i+1)
		ops = append(ops, client.BatchOp(spec, bits[lo:hi], &s))
	}
	results, err := c.Query(ctx, ops)
	if err != nil {
		log.Fatal(err)
	}
	reports := make([]int, 0, *users)
	for i, r := range results {
		if err := r.Err(); err != nil {
			log.Fatalf("collector %d: %v", i, err)
		}
		reports = append(reports, r.Outputs...)
	}
	reportedOnes := 0
	for _, b := range reports {
		reportedOnes += b
	}

	// Decode: the server's unbiased estimator inverts the mechanism, so
	// E[estimate] equals the true total exactly.
	est, err := c.Estimate(ctx, spec, reports)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nusers:             %d across %d collectors\n", *users, len(ops))
	fmt.Printf("true ones:         %d (rate %.4f)\n", trueOnes, float64(trueOnes)/float64(*users))
	fmt.Printf("reported ones:     %d (raw rate %.4f — biased toward 1/2)\n",
		reportedOnes, float64(reportedOnes)/float64(*users))
	fmt.Printf("debiased estimate: %.0f (rate %.4f, error %.2f%%, unbiased=%v)\n",
		est.Sum, est.Sum/float64(*users),
		100*math.Abs(est.Sum-float64(trueOnes))/float64(trueOnes), est.Unbiased)

	// Sanity: the standard error of the debiased estimate.
	se := math.Sqrt(float64(*users)*pTruth*(1-pTruth)) / math.Abs(2*pTruth-1)
	fmt.Printf("expected standard error: ±%.0f users (observed error within ~2 SE: %v)\n",
		se, math.Abs(est.Sum-float64(trueOnes)) < 2.5*se)
}

// startInProcess boots the real privcountd route set over a fresh
// service on a loopback port, returning its base URL and a shutdown
// func — the same wiring cmd/privcountd uses, minus the process
// lifecycle.
func startInProcess(seed uint64) (string, func(), error) {
	svc := service.New(service.Config{Capacity: 16, Seed: seed})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return "", nil, err
	}
	srv := &http.Server{Handler: httpapi.NewMux(svc)}
	go srv.Serve(ln)
	stop := func() {
		srv.Close()
		svc.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}
