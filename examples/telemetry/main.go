// Telemetry demonstrates the local-DP corner of the paper (§II-B): each
// user perturbs their own one-bit report with randomized response (the
// n = 1 mechanism, as in RAPPOR-style telemetry), and the collector
// debiases the aggregate. No trusted aggregator is needed.
//
//	go run ./examples/telemetry -users 100000 -rate 0.13 -alpha 0.8
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"privcount"
)

func main() {
	var (
		users = flag.Int("users", 100000, "number of reporting users")
		rate  = flag.Float64("rate", 0.13, "true fraction of users with the sensitive bit set")
		alpha = flag.Float64("alpha", 0.8, "per-user privacy parameter")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	// Randomized response: report truth with probability 1/(1+alpha).
	rr, err := privcount.NewRandomizedResponse(*alpha)
	if err != nil {
		log.Fatal(err)
	}
	pTruth := rr.Prob(1, 1)
	fmt.Printf("randomized response: truth kept with probability %.4f (alpha=%.2f)\n", pTruth, *alpha)

	sampler, err := privcount.NewSampler(rr)
	if err != nil {
		log.Fatal(err)
	}
	src := privcount.NewRand(*seed)

	// Each user holds a private bit and reports through the mechanism.
	trueOnes := 0
	reportedOnes := 0
	for u := 0; u < *users; u++ {
		bit := 0
		if src.Float64() < *rate {
			bit = 1
		}
		trueOnes += bit
		reportedOnes += sampler.Sample(src, bit)
	}

	// Debias: E[report] = p·bit + (1−p)·(1−bit), so
	// bits ≈ (reports − (1−p)·users) / (2p − 1).
	p := pTruth
	estimate := (float64(reportedOnes) - (1-p)*float64(*users)) / (2*p - 1)

	// The same estimator via the library's mechanism-level debiasing.
	est, err := rr.UnbiasedEstimator()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unbiased per-report estimator: report 0 -> %+.4f, report 1 -> %+.4f\n", est[0], est[1])

	fmt.Printf("\nusers:            %d\n", *users)
	fmt.Printf("true ones:        %d (rate %.4f)\n", trueOnes, float64(trueOnes)/float64(*users))
	fmt.Printf("reported ones:    %d (raw rate %.4f — biased toward 1/2)\n",
		reportedOnes, float64(reportedOnes)/float64(*users))
	fmt.Printf("debiased estimate: %.0f (rate %.4f, error %.2f%%)\n",
		estimate, estimate/float64(*users),
		100*math.Abs(estimate-float64(trueOnes))/float64(trueOnes))

	// Sanity: the standard error of the debiased estimate.
	se := math.Sqrt(float64(*users)*p*(1-p)) / math.Abs(2*p-1)
	fmt.Printf("expected standard error: ±%.0f users (observed error within ~2 SE: %v)\n",
		se, math.Abs(estimate-float64(trueOnes)) < 2.5*se)
}
