// Adultsurvey reproduces the paper's §V-B scenario end to end: census
// records are split into small groups, each group's count of a sensitive
// attribute is released under differential privacy, and an analyst
// measures per-group accuracy and recovers an unbiased population total.
//
//	go run ./examples/adultsurvey                      # synthetic records
//	go run ./examples/adultsurvey -adult adult.data    # real UCI file
//	go run ./examples/adultsurvey -target income -n 6
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"privcount"
)

func main() {
	var (
		adultPath = flag.String("adult", "", "path to a real UCI adult.data file (default: synthetic records)")
		targetStr = flag.String("target", "young", "sensitive attribute: young|gender|income")
		n         = flag.Int("n", 5, "group size")
		alpha     = flag.Float64("alpha", 0.9, "privacy parameter")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	var records []privcount.AdultRecord
	if *adultPath != "" {
		f, err := os.Open(*adultPath)
		if err != nil {
			log.Fatal(err)
		}
		var loadErr error
		records, loadErr = privcount.LoadAdultCSV(f)
		f.Close()
		if loadErr != nil {
			log.Fatal(loadErr)
		}
		fmt.Printf("loaded %d real records from %s\n", len(records), *adultPath)
	} else {
		records = privcount.GenerateAdult(32561, privcount.NewRand(*seed))
		fmt.Printf("generated %d synthetic Adult-like records (see DESIGN.md)\n", len(records))
	}

	var target privcount.AdultTarget
	switch *targetStr {
	case "young":
		target = privcount.TargetYoung
	case "gender":
		target = privcount.TargetGender
	case "income":
		target = privcount.TargetIncome
	default:
		log.Fatalf("unknown target %q (want young|gender|income)", *targetStr)
	}

	groups, err := privcount.AdultGroups(records, target, *n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("formed %d groups of %d; mean true count %.3f\n\n",
		len(groups.Counts), groups.N, groups.Mean())

	// Compare the paper's four mechanisms on the wrong-answer rate, as in
	// Figure 10 (50 repetitions, one-standard-error bars).
	gm, err := privcount.NewGeometric(*n, *alpha)
	if err != nil {
		log.Fatal(err)
	}
	wm, err := privcount.WM(*n, *alpha)
	if err != nil {
		log.Fatal(err)
	}
	em, err := privcount.NewExplicitFair(*n, *alpha)
	if err != nil {
		log.Fatal(err)
	}
	um, err := privcount.NewUniform(*n)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wrong-answer rate over 50 repetitions (alpha=%.2f):\n", *alpha)
	for _, m := range []*privcount.Mechanism{gm, wm, em, um} {
		st, err := privcount.RunExperiment(m, groups, privcount.WrongRate, 50, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s %s\n", m.Name(), st)
	}

	// Release every group once under EM and recover the population total
	// with the unbiased linear estimator.
	sampler, err := privcount.NewSampler(em)
	if err != nil {
		log.Fatal(err)
	}
	estimator, err := em.UnbiasedEstimator()
	if err != nil {
		log.Fatal(err)
	}
	variances, err := em.EstimatorVariance(estimator)
	if err != nil {
		log.Fatal(err)
	}
	src := privcount.NewRand(*seed + 7)
	var trueTotal int
	var rawTotal, debiasedTotal, totalVar float64
	for _, count := range groups.Counts {
		noisy := sampler.Sample(src, count)
		trueTotal += count
		rawTotal += float64(noisy)
		debiasedTotal += estimator[noisy]
		totalVar += variances[count]
	}
	se := math.Sqrt(totalVar)
	fmt.Printf("\npopulation total of %q bits across groups:\n", target)
	fmt.Printf("  true:              %d\n", trueTotal)
	fmt.Printf("  sum of releases:   %.0f (%.2f%% error — biased toward n/2 per group)\n", rawTotal,
		100*abs(rawTotal-float64(trueTotal))/float64(trueTotal))
	fmt.Printf("  debiased estimate: %.0f (%.2f%% error; predicted standard error ±%.0f at this alpha)\n",
		debiasedTotal, 100*abs(debiasedTotal-float64(trueTotal))/float64(trueTotal), se)
	fmt.Printf("  observed error within ~2 SE: %v\n",
		abs(debiasedTotal-float64(trueTotal)) < 2.5*se)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
