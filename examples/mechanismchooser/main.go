// Mechanismchooser walks the paper's Figure 5 decision procedure: given
// the structural properties you require of a private count mechanism, it
// selects among GM, EM, and the two LP behaviours, builds the mechanism,
// and proves the request is satisfied.
//
//	go run ./examples/mechanismchooser -n 6 -alpha 0.9 -props F
//	go run ./examples/mechanismchooser -n 6 -alpha 0.9 -props WH+CM
//	go run ./examples/mechanismchooser -n 12 -alpha 0.45 -props all
package main

import (
	"flag"
	"fmt"
	"log"

	"privcount"
)

func main() {
	var (
		n        = flag.Int("n", 6, "group size")
		alpha    = flag.Float64("alpha", 0.9, "privacy parameter")
		propsStr = flag.String("props", "WH", "required properties, e.g. WH, WH+CM, F, all")
	)
	flag.Parse()

	props, err := privcount.ParseProperties(*propsStr)
	if err != nil {
		log.Fatal(err)
	}
	closure := privcount.ClosureOf(props)
	fmt.Printf("requested:  %s\n", privcount.PropertySetString(props))
	fmt.Printf("implied:    %s (RM=>RH, CM=>CH, CH=>WH, F+RH<=>F+CH)\n\n",
		privcount.PropertySetString(closure))

	choice, err := privcount.Choose(*n, *alpha, props)
	if err != nil {
		log.Fatal(err)
	}
	m := choice.Mechanism
	fmt.Printf("decision:   %s\n", choice.Rule)
	fmt.Printf("mechanism:  %s, L0 score %.6f\n\n", m.Name(), m.L0())
	fmt.Println(privcount.HeatmapASCII(m))

	// Prove the request is honoured.
	if v := m.Violation(props, 1e-7); v != "" {
		log.Fatalf("BUG: requested property violated: %s", v)
	}
	fmt.Printf("request satisfied; full property set: %s\n",
		privcount.PropertySetString(m.SatisfiedProperties(1e-7)))
	fmt.Printf("alpha-DP verified: %v\n\n", m.SatisfiesDP(*alpha, 0))

	// Context: the cost of the two explicit bookends.
	fmt.Printf("cost context: GM %.6f <= chosen %.6f <= EM %.6f <= UM 1\n",
		privcount.GeometricL0(*alpha), m.L0(), privcount.ExplicitFairL0(*n, *alpha))
	fmt.Printf("(the whole constrained family costs at most (n+1)/n = %.3fx the optimum)\n",
		float64(*n+1)/float64(*n))
}
