// Quickstart: build the paper's mechanisms for a small group, compare
// their accuracy, and release a noisy count.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"privcount"
)

func main() {
	const (
		n     = 8   // group of 8 people, true count in 0..8
		alpha = 0.9 // strong privacy (alpha = exp(-eps) close to 1)
	)

	// The three interesting mechanisms from the paper.
	gm, err := privcount.NewGeometric(n, alpha)
	if err != nil {
		log.Fatal(err)
	}
	em, err := privcount.NewExplicitFair(n, alpha)
	if err != nil {
		log.Fatal(err)
	}
	wm, err := privcount.WM(n, alpha)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Explicit fair mechanism (EM) heatmap — mass follows the diagonal:")
	fmt.Println(privcount.HeatmapASCII(em))

	fmt.Println("Geometric mechanism (GM) heatmap — mass spikes at outputs 0 and n:")
	fmt.Println(privcount.HeatmapASCII(gm))

	fmt.Printf("%-4s  %-10s %-12s %-s\n", "name", "L0 score", "truth prob", "properties")
	for _, m := range []*privcount.Mechanism{gm, wm, em} {
		tp, err := m.TruthProb(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s  %-10.6f %-12.6f %s\n",
			m.Name(), m.L0(), tp, privcount.PropertySetString(m.SatisfiedProperties(1e-7)))
	}

	// Release a noisy count. Use a crypto source for real releases; the
	// seeded source here keeps the demo reproducible.
	sampler, err := privcount.NewSampler(em)
	if err != nil {
		log.Fatal(err)
	}
	src := privcount.NewRand(42)
	trueCount := 5
	fmt.Printf("\ntrue count %d -> five independent EM releases:", trueCount)
	for i := 0; i < 5; i++ {
		fmt.Printf(" %d", sampler.Sample(src, trueCount))
	}
	fmt.Println()

	// Verify the privacy guarantee on the matrix itself.
	fmt.Printf("EM satisfies %.2f-DP: %v (tightest alpha %.4f)\n",
		alpha, em.SatisfiesDP(alpha, 0), em.DPAlpha())
}
