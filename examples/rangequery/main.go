// Rangequery explores the paper's closing suggestion — using constrained
// count mechanisms as the building block for range queries. A population
// is split into B ordered buckets (e.g. age bands); each bucket's count
// of a sensitive bit is released once under a constrained mechanism, and
// an analyst answers range-sum queries by adding the debiased releases.
// The error of a range query grows with its length, and the choice of
// mechanism (GM vs EM) shifts where that error comes from: GM is biased
// toward the interior on extreme buckets, EM is unbiased-by-symmetry but
// noisier per bucket.
//
//	go run ./examples/rangequery -buckets 32 -n 10 -alpha 0.8
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"privcount"
)

func main() {
	var (
		buckets = flag.Int("buckets", 32, "number of ordered buckets")
		n       = flag.Int("n", 10, "individuals per bucket")
		alpha   = flag.Float64("alpha", 0.8, "privacy parameter per bucket release")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	// Synthetic ordered population: the sensitive-bit rate drifts across
	// buckets (like a prevalence that rises with an ordered attribute).
	src := privcount.NewRand(*seed)
	truths := make([]int, *buckets)
	for b := range truths {
		rate := 0.15 + 0.6*float64(b)/float64(*buckets-1)
		count := 0
		for k := 0; k < *n; k++ {
			if src.Float64() < rate {
				count++
			}
		}
		truths[b] = count
	}

	gm, err := privcount.NewGeometric(*n, *alpha)
	if err != nil {
		log.Fatal(err)
	}
	em, err := privcount.NewExplicitFair(*n, *alpha)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("released %d buckets of %d people at alpha=%.2f (per-bucket DP)\n\n",
		*buckets, *n, *alpha)
	fmt.Printf("%-22s %10s %10s %10s\n", "range query", "true", "GM est", "EM est")

	type release struct {
		value    float64
		debiased float64
	}
	releaseAll := func(m *privcount.Mechanism) ([]release, error) {
		sampler, err := privcount.NewSampler(m)
		if err != nil {
			return nil, err
		}
		est, err := m.UnbiasedEstimator()
		if err != nil {
			return nil, err
		}
		out := make([]release, len(truths))
		for b, truth := range truths {
			v := sampler.Sample(src, truth)
			out[b] = release{value: float64(v), debiased: est[v]}
		}
		return out, nil
	}
	gmRel, err := releaseAll(gm)
	if err != nil {
		log.Fatal(err)
	}
	emRel, err := releaseAll(em)
	if err != nil {
		log.Fatal(err)
	}

	queries := [][2]int{
		{0, 3},
		{0, *buckets / 4},
		{*buckets / 4, 3 * *buckets / 4},
		{0, *buckets - 1},
	}
	for _, q := range queries {
		lo, hi := q[0], q[1]
		var truth int
		var gmSum, emSum float64
		for b := lo; b <= hi; b++ {
			truth += truths[b]
			gmSum += gmRel[b].debiased
			emSum += emRel[b].debiased
		}
		fmt.Printf("buckets [%2d, %2d]        %10d %10.1f %10.1f\n", lo, hi, truth, gmSum, emSum)
	}

	// Predicted standard error per mechanism for the full range, from the
	// estimator variance at the true inputs.
	sePredict := func(m *privcount.Mechanism) float64 {
		est, err := m.UnbiasedEstimator()
		if err != nil {
			return math.NaN()
		}
		vars, err := m.EstimatorVariance(est)
		if err != nil {
			return math.NaN()
		}
		var total float64
		for _, truth := range truths {
			total += vars[truth]
		}
		return math.Sqrt(total)
	}
	fmt.Printf("\npredicted full-range standard error: GM ±%.1f, EM ±%.1f\n",
		sePredict(gm), sePredict(em))
	fmt.Println("longer ranges average out per-bucket noise relative to the total;")
	fmt.Println("debiasing removes GM's truncation bias, at the cost of variance.")
}
