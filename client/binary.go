package client

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// This file is the binary form of the /v2/query op stream, shared —
// like the JSON vocabulary in wire.go — by the server and the SDK.
// JSON stays the default; binary is negotiated per request with
// Content-Type / Accept: ContentTypeBinary and exists so one
// connection can stream arbitrarily large batches without either side
// buffering the whole request.
//
// Stream grammar (all integers little-endian, varints are unsigned
// LEB128 as encoding/binary uvarints):
//
//	stream  = magic frame* end
//	magic   = "PCB1"
//	frame   = uvarint(len(payload)) payload      ; 0 < len <= MaxFrameBytes
//	end     = uvarint(0)
//
// An op payload is an opcode byte, the mechanism ID as a length-
// prefixed string, then opcode-specific fields:
//
//	sample(1)   = uvarint(count)
//	batch(2)    = hasSeed byte, [8-byte seed], uvarint(k), k*uvarint(count)
//	estimate(3) = uvarint(k), k*uvarint(output)
//
// A result payload is a kind byte, then kind-specific fields:
//
//	error(0)    = string(code), string(message), f64bits(retryAfterSeconds)
//	sample(1)   = uvarint(output)
//	batch(2)    = uvarint(k), k*uvarint(output)
//	estimate(3) = uvarint(k), k*uvarint(mle), f64bits(sum), f64bits(mean), unbiased byte
//	abort(4)    = same fields as error(0)
//
// error(0) is positional — the op failed, the stream continues. An
// abort(4) frame ends the whole stream early: it is how the server
// reports a stream-level failure after the HTTP status line is already
// on the wire. Zero-length batches and estimates decode to nil slices,
// matching the JSON codec's omitempty round trip, so the two transports
// are value-equivalent over the op lattice. Negative counts cannot be
// encoded; the JSON surface rejects them at the service layer anyway.

// Content types for the /v2/query negotiation. JSON is the default on
// both sides of the exchange; binary is opt-in per direction.
const (
	ContentTypeJSON   = "application/json"
	ContentTypeBinary = "application/x-privcount-batch"
)

// MaxFrameBytes bounds a single frame's payload, so a corrupt or
// hostile length prefix cannot make a reader allocate unboundedly.
// One frame holds one op or one result; streams are unbounded.
const MaxFrameBytes = 1 << 20

var binaryMagic = [4]byte{'P', 'C', 'B', '1'}

// Opcodes and result kinds. Values are part of the wire format.
const (
	opcodeSample   = 1
	opcodeBatch    = 2
	opcodeEstimate = 3

	resultError    = 0
	resultSample   = 1
	resultBatch    = 2
	resultEstimate = 3
	resultAbort    = 4
)

// A FrameWriter encodes ops or results onto one side of a binary query
// stream. It buffers internally; Close (or Flush) must be called to
// push the tail onto the underlying writer. Not safe for concurrent
// use.
type FrameWriter struct {
	w          *bufio.Writer
	buf        []byte
	wroteMagic bool
	closed     bool
}

// NewFrameWriter starts a binary stream on w. Nothing is written until
// the first frame (or Close, which emits a valid empty stream).
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: bufio.NewWriter(w)}
}

func (fw *FrameWriter) frame(payload []byte) error {
	if fw.closed {
		return fmt.Errorf("client: write on closed binary stream")
	}
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("client: frame payload %d bytes exceeds %d", len(payload), MaxFrameBytes)
	}
	if !fw.wroteMagic {
		fw.wroteMagic = true
		if _, err := fw.w.Write(binaryMagic[:]); err != nil {
			return err
		}
	}
	var lb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lb[:], uint64(len(payload)))
	if _, err := fw.w.Write(lb[:n]); err != nil {
		return err
	}
	_, err := fw.w.Write(payload)
	return err
}

// WriteOp appends one op frame to the stream.
func (fw *FrameWriter) WriteOp(op *Op) error {
	b, err := appendOp(fw.buf[:0], op)
	if err != nil {
		return err
	}
	fw.buf = b
	return fw.frame(b)
}

// WriteResult appends one result frame to the stream.
func (fw *FrameWriter) WriteResult(r *OpResult) error {
	b, err := appendResult(fw.buf[:0], r)
	if err != nil {
		return err
	}
	fw.buf = b
	return fw.frame(b)
}

// WriteAbort appends a stream-abort frame: the receiver sees e as a
// stream-level error instead of a positional result. The stream is
// still terminated by Close.
func (fw *FrameWriter) WriteAbort(e *Error) error {
	b := append(fw.buf[:0], resultAbort)
	b = appendWireError(b, e)
	fw.buf = b
	return fw.frame(b)
}

// Flush pushes buffered frames to the underlying writer, so a peer
// that is reading results concurrently makes progress mid-stream.
func (fw *FrameWriter) Flush() error {
	if !fw.closed {
		return fw.w.Flush()
	}
	return nil
}

// Close terminates the stream with the end marker and flushes. It does
// not close the underlying writer. Further writes fail.
func (fw *FrameWriter) Close() error {
	if fw.closed {
		return nil
	}
	if !fw.wroteMagic {
		fw.wroteMagic = true
		if _, err := fw.w.Write(binaryMagic[:]); err != nil {
			return err
		}
	}
	fw.closed = true
	if err := fw.w.WriteByte(0); err != nil {
		return err
	}
	return fw.w.Flush()
}

// A FrameReader decodes one side of a binary query stream. Read
// methods return io.EOF at the stream's end marker; a stream cut off
// before the marker surfaces io.ErrUnexpectedEOF, so truncation is
// never mistaken for completion. Not safe for concurrent use.
type FrameReader struct {
	r         *bufio.Reader
	buf       []byte
	readMagic bool
	done      bool
}

// NewFrameReader reads a binary stream from r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// readFrame returns the next frame's payload, valid until the next
// call. io.EOF means the stream ended cleanly.
func (fr *FrameReader) readFrame() ([]byte, error) {
	if fr.done {
		return nil, io.EOF
	}
	if !fr.readMagic {
		var m [4]byte
		if _, err := io.ReadFull(fr.r, m[:]); err != nil {
			return nil, noEOF(err)
		}
		if m != binaryMagic {
			return nil, fmt.Errorf("client: bad binary stream magic %q", m[:])
		}
		fr.readMagic = true
	}
	n, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return nil, noEOF(err)
	}
	if n == 0 {
		fr.done = true
		return nil, io.EOF
	}
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("client: frame payload %d bytes exceeds %d", n, MaxFrameBytes)
	}
	if uint64(cap(fr.buf)) < n {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		return nil, noEOF(err)
	}
	return fr.buf, nil
}

// noEOF turns a bare EOF inside a frame into ErrUnexpectedEOF: only
// the explicit end marker may end a stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadOp decodes the next op frame. It returns io.EOF at end of
// stream.
func (fr *FrameReader) ReadOp() (Op, error) {
	var op Op
	err := fr.ReadOpInto(&op)
	return op, err
}

// ReadOpInto is ReadOp reusing op's slice capacity, the server's
// steady-state path: after the first few frames a homogeneous stream
// decodes without allocating.
func (fr *FrameReader) ReadOpInto(op *Op) error {
	payload, err := fr.readFrame()
	if err != nil {
		return err
	}
	return decodeOp(payload, op)
}

// ReadResult decodes the next result frame. io.EOF means the stream
// ended; a decoded abort frame is returned as its *Error.
func (fr *FrameReader) ReadResult() (OpResult, error) {
	var r OpResult
	payload, err := fr.readFrame()
	if err != nil {
		return r, err
	}
	err = decodeResult(payload, &r)
	return r, err
}

// appendOp encodes op onto b. Ops with negative counts or outputs are
// not encodable (the service rejects them anyway).
func appendOp(b []byte, op *Op) ([]byte, error) {
	var code byte
	switch op.Op {
	case OpSample:
		code = opcodeSample
	case OpBatch:
		code = opcodeBatch
	case OpEstimate:
		code = opcodeEstimate
	default:
		return nil, fmt.Errorf("client: op %q not encodable", op.Op)
	}
	b = append(b, code)
	b = appendString(b, op.ID)
	switch code {
	case opcodeSample:
		return appendCount(b, op.Count)
	case opcodeBatch:
		if op.Seed != nil {
			b = append(b, 1)
			b = binary.LittleEndian.AppendUint64(b, *op.Seed)
		} else {
			b = append(b, 0)
		}
		return appendCounts(b, op.Counts)
	default:
		return appendCounts(b, op.Outputs)
	}
}

// decodeOp decodes into op, reusing its slice capacity. The vector
// field an opcode does not use keeps its (truncated) scratch rather
// than being nilled, so alternating opcodes don't shed capacity;
// consumers dispatch on op.Op and never read the unused vector.
func decodeOp(payload []byte, op *Op) error {
	d := decoder{buf: payload}
	code := d.byte()
	op.ID = d.string()
	op.Count = 0
	op.Seed = nil
	op.Counts = op.Counts[:0]
	op.Outputs = op.Outputs[:0]
	switch code {
	case opcodeSample:
		op.Op = OpSample
		op.Count = d.count()
	case opcodeBatch:
		op.Op = OpBatch
		if d.byte() != 0 {
			s := d.uint64()
			op.Seed = &s
		}
		op.Counts = d.counts(op.Counts)
	case opcodeEstimate:
		op.Op = OpEstimate
		op.Outputs = d.counts(op.Outputs)
	default:
		return fmt.Errorf("client: unknown opcode %d", code)
	}
	return d.finish("op")
}

// appendResult encodes r onto b, choosing the kind from which payload
// group is populated, mirroring the JSON codec's one-of convention.
func appendResult(b []byte, r *OpResult) ([]byte, error) {
	switch {
	case r.Error != nil:
		b = append(b, resultError)
		return appendWireError(b, r.Error), nil
	case r.Output != nil:
		b = append(b, resultSample)
		return appendCount(b, *r.Output)
	case r.Sum != nil && r.Mean != nil && r.Unbiased != nil:
		b = append(b, resultEstimate)
		b, err := appendCounts(b, r.MLE)
		if err != nil {
			return nil, err
		}
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(*r.Sum))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(*r.Mean))
		if *r.Unbiased {
			return append(b, 1), nil
		}
		return append(b, 0), nil
	default:
		b = append(b, resultBatch)
		return appendCounts(b, r.Outputs)
	}
}

func decodeResult(payload []byte, r *OpResult) error {
	d := decoder{buf: payload}
	switch kind := d.byte(); kind {
	case resultError, resultAbort:
		e := d.wireError()
		if err := d.finish("result"); err != nil {
			return err
		}
		if kind == resultAbort {
			return e
		}
		*r = OpResult{Error: e}
		return nil
	case resultSample:
		v := d.count()
		*r = OpResult{Output: &v}
	case resultBatch:
		*r = OpResult{Outputs: d.counts(r.Outputs[:0])}
	case resultEstimate:
		mle := d.counts(r.MLE[:0])
		sum := math.Float64frombits(d.uint64())
		mean := math.Float64frombits(d.uint64())
		unbiased := d.byte() != 0
		*r = OpResult{MLE: mle, Sum: &sum, Mean: &mean, Unbiased: &unbiased}
	default:
		return fmt.Errorf("client: unknown result kind %d", kind)
	}
	return d.finish("result")
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendCount(b []byte, v int) ([]byte, error) {
	if v < 0 {
		return nil, fmt.Errorf("client: negative count %d not encodable", v)
	}
	return binary.AppendUvarint(b, uint64(v)), nil
}

func appendCounts(b []byte, vs []int) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		var err error
		if b, err = appendCount(b, v); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func appendWireError(b []byte, e *Error) []byte {
	b = appendString(b, string(e.Code))
	b = appendString(b, e.Message)
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(e.RetryAfterSeconds))
}

// decoder walks one frame payload. Errors are sticky: the first
// malformed field poisons the rest, and finish reports it, so call
// sites read fields linearly and check once.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("client: "+format, args...)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail("frame truncated")
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) uint64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail("frame truncated")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) count() int {
	v := d.uvarint()
	if v > math.MaxInt32 {
		d.fail("count %d out of range", v)
		return 0
	}
	return int(v)
}

// counts decodes a length-prefixed int vector into dst's capacity. A
// zero-length vector yields nil, matching JSON omitempty round trips.
func (d *decoder) counts(dst []int) []int {
	k := d.uvarint()
	if k == 0 || d.err != nil {
		return nil
	}
	// Each count is at least one byte, so the remaining payload bounds k
	// and a hostile prefix cannot force a huge allocation.
	if k > uint64(len(d.buf)) {
		d.fail("vector length %d exceeds frame", k)
		return nil
	}
	for i := uint64(0); i < k; i++ {
		dst = append(dst, d.count())
	}
	if d.err != nil {
		return nil
	}
	return dst
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.fail("string length %d exceeds frame", n)
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) wireError() *Error {
	e := &Error{Code: Code(d.string()), Message: d.string()}
	e.RetryAfterSeconds = math.Float64frombits(d.uint64())
	return e
}

func (d *decoder) finish(what string) error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("client: %d trailing bytes after %s frame", len(d.buf), what)
	}
	return nil
}
