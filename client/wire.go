package client

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"privcount"
)

// This file is the v2 wire vocabulary, shared verbatim by the server
// (internal/httpapi marshals these exact structs) and the SDK (Client
// unmarshals them), so the protocol cannot drift between the two sides
// without a compile error or a golden-fixture failure.

// Code is a machine-readable error category carried in every v2 error
// envelope: {"error": {"code": "...", "message": "..."}}.
type Code string

// The error taxonomy. Servers only ever emit these codes; clients turn
// them back into typed errors (see Error and the Err* sentinels).
const (
	// CodeSpecInvalid: the request names a malformed spec or mechanism
	// ID, or the request body itself does not parse. Not retryable.
	CodeSpecInvalid Code = "spec_invalid"
	// CodeNotAdmitted: the mechanism ID is well-formed but has never
	// been admitted (or was evicted); PUT it first.
	CodeNotAdmitted Code = "not_admitted"
	// CodeBuildCanceled: the mechanism's build was cut short (abandoned
	// request, cache eviction, server shutdown). Retryable — re-PUT the
	// mechanism to re-arm the build.
	CodeBuildCanceled Code = "build_canceled"
	// CodeBuildFailed: the build itself failed deterministically (e.g.
	// an infeasible constraint set). Retrying fails the same way.
	CodeBuildFailed Code = "build_failed"
	// CodeNotReady: the mechanism exists but its build has not settled,
	// so the requested representation (an artifact export) does not
	// exist yet. Retryable — poll the status document or just retry
	// once the build finishes.
	CodeNotReady Code = "not_ready"
	// CodeArtifactInvalid: an imported (or served) mechanism artifact
	// failed decoding or re-verification — wrong spec, bad framing,
	// failed checksum, non-stochastic matrix. Not retryable with the
	// same bytes.
	CodeArtifactInvalid Code = "artifact_invalid"
	// CodeOverLimit: the spec is beyond a serving admission bound, or
	// the request exceeds a protocol limit (e.g. too many query ops).
	CodeOverLimit Code = "over_limit"
	// CodeGone: the route was retired (the /v1 surface). Not retryable;
	// the response's Link header names the v2 successor.
	CodeGone Code = "gone"
	// CodeUnsupportedMedia: Content-Type/Accept negotiation failed — the
	// request carried a body type the server does not read (415) or
	// demanded a response type it does not write (406). Not retryable
	// without changing the headers.
	CodeUnsupportedMedia Code = "unsupported_media"
)

// Error is a typed API error: the decoded wire envelope on the client
// side, the envelope payload on the server side. It matches the
// sentinel of its code under errors.Is, so
//
//	errors.Is(err, client.ErrBuildCanceled)
//
// holds for any error that crossed the wire as {"code":"build_canceled"}.
type Error struct {
	// Code is the machine-readable category.
	Code Code `json:"code"`
	// Message is the human-readable detail from the server.
	Message string `json:"message"`
	// RetryAfterSeconds is the server's back-off advice for transient
	// over_limit errors (load-shed build admissions): wait this long and
	// the same request is likely admissible. Zero means no advice. It
	// rides in the envelope so per-op errors inside a query response
	// carry it too; top-level errors also surface it as an HTTP
	// Retry-After header.
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
	// HTTPStatus is the HTTP status the envelope arrived under (0 for
	// errors synthesised client-side, e.g. an invalid spec caught before
	// any request was made). It is not part of the wire form.
	HTTPStatus int `json:"-"`
}

// RetryAfter returns the server's back-off advice as a duration (0 when
// the error carries none).
func (e *Error) RetryAfter() time.Duration {
	return time.Duration(e.RetryAfterSeconds * float64(time.Second))
}

// Error renders "code: message".
func (e *Error) Error() string {
	if e.Message == "" {
		return string(e.Code)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Is matches any *Error carrying the same code, which is what makes the
// Err* sentinels work across the wire.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Code == e.Code
}

// Sentinel errors, one per taxonomy code: compare with errors.Is, or
// errors.As into *Error for the message and HTTP status.
var (
	ErrSpecInvalid     error = &Error{Code: CodeSpecInvalid, Message: "invalid mechanism spec"}
	ErrNotAdmitted     error = &Error{Code: CodeNotAdmitted, Message: "mechanism not admitted"}
	ErrBuildCanceled   error = &Error{Code: CodeBuildCanceled, Message: "mechanism build canceled"}
	ErrBuildFailed     error = &Error{Code: CodeBuildFailed, Message: "mechanism build failed"}
	ErrOverLimit       error = &Error{Code: CodeOverLimit, Message: "request over serving limits"}
	ErrGone            error = &Error{Code: CodeGone, Message: "route retired"}
	ErrUnsupported     error = &Error{Code: CodeUnsupportedMedia, Message: "unsupported media type"}
	ErrNotReady        error = &Error{Code: CodeNotReady, Message: "mechanism not ready"}
	ErrArtifactInvalid error = &Error{Code: CodeArtifactInvalid, Message: "invalid mechanism artifact"}
)

// Envelope is the uniform v2 error body.
type Envelope struct {
	Error *Error `json:"error"`
}

// IsRetryable reports whether err is worth retrying against the same
// server: a cut-short build (CodeBuildCanceled — re-PUT re-arms it), or
// a transient over_limit — a load-shed admission, recognisable by its
// 503 status or by explicit Retry-After advice (per-op errors carry the
// advice but no status). Static over_limit refusals (a spec beyond the
// server's ceilings) and every other code are not retryable: they fail
// the same way every time. Pair with (*Error).RetryAfter for how long
// to back off.
func IsRetryable(err error) bool {
	var e *Error
	if !errors.As(err, &e) {
		return false
	}
	switch e.Code {
	case CodeBuildCanceled:
		return true
	case CodeNotReady:
		// The build is in flight; the same export succeeds once it
		// settles.
		return true
	case CodeOverLimit:
		return e.HTTPStatus == http.StatusServiceUnavailable || e.RetryAfterSeconds > 0
	}
	return false
}

// localError types a client-side failure (no wire round trip) with the
// taxonomy, so SDK callers handle local and remote failures uniformly.
func localError(err error) error {
	var apiErr *Error
	if errors.As(err, &apiErr) {
		return err
	}
	code := CodeSpecInvalid
	switch {
	case errors.Is(err, privcount.ErrOverLimit):
		code = CodeOverLimit
	case errors.Is(err, privcount.ErrNotAdmitted):
		code = CodeNotAdmitted
	case errors.Is(err, privcount.ErrBuildFailed):
		code = CodeBuildFailed
	case errors.Is(err, privcount.ErrNotReady):
		code = CodeNotReady
	case errors.Is(err, privcount.ErrArtifactInvalid):
		code = CodeArtifactInvalid
	}
	return &Error{Code: code, Message: err.Error()}
}

// MechanismInfo describes a ready mechanism: what the spec resolved to.
type MechanismInfo struct {
	// Name is the mechanism family ("GM", "EM", "UM", "WM", "LP", ...).
	Name string `json:"name"`
	// N and Alpha echo the spec's group size and privacy level.
	N     int     `json:"n"`
	Alpha float64 `json:"alpha"`
	// Rule describes how the mechanism was selected (for kind choose,
	// the Figure 5 flowchart path taken).
	Rule string `json:"rule"`
	// Properties is the closed §IV-A property set the served mechanism
	// guarantees — possibly a strict superset of the request.
	Properties string `json:"properties"`
	// L0 is the rescaled wrong-answer probability (Eq 1).
	L0 float64 `json:"l0"`
	// Debiasable reports whether the unbiased estimator exists.
	Debiasable bool `json:"debiasable"`
}

// MechanismStatus is the v2 resource document for one mechanism — what
// PUT/GET /v2/mechanisms/{id} return and GET /v2/mechanisms lists.
type MechanismStatus struct {
	// ID is the canonical wire token; equivalent specs share one ID.
	ID string `json:"id"`
	// Spec is the canonical spec behind the ID.
	Spec privcount.Spec `json:"spec"`
	// State is the build state: "pending", "building", "ready", "failed".
	State string `json:"state"`
	// BuildSeconds is the wall time of the last settled build attempt.
	BuildSeconds float64 `json:"build_seconds"`
	// Error carries the taxonomy error of a failed build.
	Error *Error `json:"error,omitempty"`
	// Mechanism is populated once State is "ready".
	Mechanism *MechanismInfo `json:"mechanism,omitempty"`
}

// Ready reports whether the mechanism is built and serving.
func (s *MechanismStatus) Ready() bool { return s.State == "ready" }

// Err returns the status's build error as a typed error (nil unless
// State is "failed").
func (s *MechanismStatus) Err() error {
	if s.Error == nil {
		return nil
	}
	return s.Error
}

// MechanismList is the GET /v2/mechanisms response body.
type MechanismList struct {
	Mechanisms []MechanismStatus `json:"mechanisms"`
}

// ClusterStatus is the GET /v2/cluster document: one node's view of the
// fleet — ring membership and parameters, warm-sync counters, and the
// local ownership snapshot. Single-box servers do not serve the route.
type ClusterStatus struct {
	// Self is the answering node's base URL; Peers is the full ring
	// membership (Self included).
	Self  string   `json:"self"`
	Peers []string `json:"peers"`
	// Replication is the owner-plus-replicas count per mechanism;
	// VirtualNodes the per-peer point count on the hash ring; RouteMode
	// "proxy" or "redirect".
	Replication  int    `json:"replication"`
	VirtualNodes int    `json:"virtual_nodes"`
	RouteMode    string `json:"route_mode"`
	// PollSeconds is the warm-sync period; SyncPasses counts completed
	// passes and LastSyncUnix stamps the latest (0 before the first).
	PollSeconds  float64 `json:"poll_seconds"`
	SyncPasses   int64   `json:"sync_passes"`
	LastSyncUnix int64   `json:"last_sync_unix,omitempty"`
	// SyncPulls counts artifacts imported from peers, SyncBytes their
	// total size, SyncConflicts diverging peer copies (local kept),
	// SyncRejects pulled artifacts failing verification, SyncErrors
	// HTTP-level sync failures.
	SyncPulls     int64 `json:"sync_pulls"`
	SyncBytes     int64 `json:"sync_bytes"`
	SyncConflicts int64 `json:"sync_conflicts"`
	SyncRejects   int64 `json:"sync_rejects"`
	SyncErrors    int64 `json:"sync_errors"`
	// OwnedMechanisms counts locally cached mechanisms the node owns or
	// replicates under the current ring; CachedMechanisms the whole
	// local cache.
	OwnedMechanisms  int `json:"owned_mechanisms"`
	CachedMechanisms int `json:"cached_mechanisms"`
}

// Op names for the multiplexed query protocol.
const (
	OpSample   = "sample"
	OpBatch    = "batch"
	OpEstimate = "estimate"
)

// Op is one operation in a multiplexed POST /v2/query batch. Build one
// with SampleOp, BatchOp, or EstimateOp.
type Op struct {
	// Op is the operation kind: "sample", "batch", or "estimate".
	Op string `json:"op"`
	// ID is the canonical wire token of the target mechanism.
	ID string `json:"id"`
	// Count is the true count for a sample op.
	Count int `json:"count,omitempty"`
	// Counts are the true counts for a batch op.
	Counts []int `json:"counts,omitempty"`
	// Seed, if set, makes a batch op's draws reproducible.
	Seed *uint64 `json:"seed,omitempty"`
	// Outputs are the observed releases for an estimate op.
	Outputs []int `json:"outputs,omitempty"`
}

// SampleOp draws one noisy release for true count under spec.
func SampleOp(spec privcount.Spec, count int) Op {
	return Op{Op: OpSample, ID: spec.ID(), Count: count}
}

// BatchOp draws one noisy release per true count under spec. A non-nil
// seed makes the draws reproducible.
func BatchOp(spec privcount.Spec, counts []int, seed *uint64) Op {
	return Op{Op: OpBatch, ID: spec.ID(), Counts: counts, Seed: seed}
}

// EstimateOp decodes observed outputs under spec: per-output MLE inputs
// plus the debiased aggregate.
func EstimateOp(spec privcount.Spec, outputs []int) Op {
	return Op{Op: OpEstimate, ID: spec.ID(), Outputs: outputs}
}

// OpResult is the positional result of one query op: exactly one of the
// payload groups is set, or Error.
type OpResult struct {
	// Output is a sample op's noisy release.
	Output *int `json:"output,omitempty"`
	// Outputs are a batch op's noisy releases.
	Outputs []int `json:"outputs,omitempty"`
	// MLE/Sum/Mean/Unbiased are an estimate op's decode (see Estimate).
	MLE      []int    `json:"mle,omitempty"`
	Sum      *float64 `json:"sum,omitempty"`
	Mean     *float64 `json:"mean,omitempty"`
	Unbiased *bool    `json:"unbiased,omitempty"`
	// Error is the op's taxonomy error; the other fields are unset.
	Error *Error `json:"error,omitempty"`
}

// Err returns the op's error as a typed error, nil on success.
func (r *OpResult) Err() error {
	if r.Error == nil {
		return nil
	}
	return r.Error
}

// Estimate returns an estimate op's result in struct form (nil if this
// result is not an estimate or errored).
func (r *OpResult) Estimate() *Estimate {
	if r.Error != nil || r.Sum == nil || r.Mean == nil || r.Unbiased == nil {
		return nil
	}
	return &Estimate{MLE: r.MLE, Sum: *r.Sum, Mean: *r.Mean, Unbiased: *r.Unbiased}
}

// Estimate is the decoded result of a batch of observed noisy releases.
type Estimate struct {
	// MLE holds the maximum-likelihood input for each observed output.
	MLE []int
	// Sum estimates the total of the true counts; when Unbiased it is
	// the debiasing estimator's sum with E[Sum] = Σ true counts exactly.
	Sum float64
	// Mean is Sum divided by the batch size.
	Mean float64
	// Unbiased reports whether the debiasing estimator existed.
	Unbiased bool
}

// QueryRequest is the POST /v2/query body.
type QueryRequest struct {
	Ops []Op `json:"ops"`
}

// QueryResponse carries one OpResult per request op, positionally.
type QueryResponse struct {
	Results []OpResult `json:"results"`
}

// MaxQueryOps bounds how many operations one multiplexed query may
// carry; longer batches are refused with CodeOverLimit. It keeps a
// single request from monopolising a handler while still amortising
// hundreds of round trips.
const MaxQueryOps = 256
