package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"privcount"
	"privcount/internal/cluster"
)

// ClusterStatus reads the server's GET /v2/cluster document. Single-box
// servers do not serve the route; the call returns the 404's typed
// error.
func (c *Client) ClusterStatus(ctx context.Context) (*ClusterStatus, error) {
	var st ClusterStatus
	if err := c.do(ctx, http.MethodGet, "/v2/cluster", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// RingClient is a fleet-aware Client: it bootstraps the ring topology
// from any one node's GET /v2/cluster, rebuilds the same consistent-
// hash ring locally, and sends each request straight to the mechanism's
// owner — the proxy/redirect hop on the server becomes the fallback for
// a stale view rather than the steady state. Query batches are split by
// owner and reassembled positionally, so one round trip per owning node
// serves an arbitrary mix of mechanisms.
//
// Topology is a snapshot: call Refresh when the fleet changes (requests
// still succeed on a stale ring — the contacted node proxies, or the
// HTTP client follows the 307, it just costs the extra hop).
type RingClient struct {
	opts []Option
	seed *Client // the bootstrap node; serves fleet-wide routes too

	mu          sync.RWMutex
	ring        *cluster.Ring
	replication int
	clients     map[string]*Client // by peer base URL, created lazily
}

// NewRingClient bootstraps a RingClient from the privcountd at
// anyNodeURL, which must be a cluster member. opts apply to every
// per-peer Client the RingClient creates.
func NewRingClient(ctx context.Context, anyNodeURL string, opts ...Option) (*RingClient, error) {
	seed, err := New(anyNodeURL, opts...)
	if err != nil {
		return nil, err
	}
	rc := &RingClient{
		opts:    opts,
		seed:    seed,
		clients: map[string]*Client{seed.base: seed},
	}
	if err := rc.Refresh(ctx); err != nil {
		return nil, err
	}
	return rc, nil
}

// Refresh re-reads the cluster topology from the bootstrap node and
// swaps in a freshly built ring. In-flight calls keep the old view.
func (rc *RingClient) Refresh(ctx context.Context) error {
	st, err := rc.seed.ClusterStatus(ctx)
	if err != nil {
		return fmt.Errorf("client: cluster bootstrap: %w", err)
	}
	peers := make([]cluster.Peer, len(st.Peers))
	for i, u := range st.Peers {
		peers[i] = cluster.Peer{URL: u}
	}
	ring, err := cluster.NewRing(peers, st.VirtualNodes)
	if err != nil {
		return fmt.Errorf("client: cluster bootstrap: %w", err)
	}
	rc.mu.Lock()
	rc.ring, rc.replication = ring, st.Replication
	rc.mu.Unlock()
	return nil
}

// Peers returns the current topology snapshot's peer URLs.
func (rc *RingClient) Peers() []string {
	rc.mu.RLock()
	defer rc.mu.RUnlock()
	peers := rc.ring.Peers()
	urls := make([]string, len(peers))
	for i, p := range peers {
		urls[i] = p.URL
	}
	return urls
}

// ownerClient returns the Client for the node owning the canonical ID,
// creating the per-peer Client on first use.
func (rc *RingClient) ownerClient(id string) (*Client, error) {
	rc.mu.RLock()
	owner := rc.ring.Owner(id).URL
	c := rc.clients[owner]
	rc.mu.RUnlock()
	if c != nil {
		return c, nil
	}
	nc, err := New(owner, rc.opts...)
	if err != nil {
		return nil, fmt.Errorf("client: peer %s: %w", owner, err)
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if c = rc.clients[owner]; c != nil {
		return c, nil
	}
	rc.clients[owner] = nc
	return nc, nil
}

// forSpec resolves spec's canonical ID and its owner's Client.
func (rc *RingClient) forSpec(spec privcount.Spec) (*Client, error) {
	id, err := specID(spec)
	if err != nil {
		return nil, err
	}
	return rc.ownerClient(id)
}

// Create admits spec on its owning node.
func (rc *RingClient) Create(ctx context.Context, spec privcount.Spec) (*MechanismStatus, error) {
	c, err := rc.forSpec(spec)
	if err != nil {
		return nil, err
	}
	return c.Create(ctx, spec)
}

// Status reads spec's status from its owning node.
func (rc *RingClient) Status(ctx context.Context, spec privcount.Spec) (*MechanismStatus, error) {
	c, err := rc.forSpec(spec)
	if err != nil {
		return nil, err
	}
	return c.Status(ctx, spec)
}

// WaitReady polls spec to readiness on its owning node.
func (rc *RingClient) WaitReady(ctx context.Context, spec privcount.Spec) (*MechanismStatus, error) {
	c, err := rc.forSpec(spec)
	if err != nil {
		return nil, err
	}
	return c.WaitReady(ctx, spec)
}

// Sample draws one noisy release from spec's owning node.
func (rc *RingClient) Sample(ctx context.Context, spec privcount.Spec, count int) (int, error) {
	c, err := rc.forSpec(spec)
	if err != nil {
		return 0, err
	}
	return c.Sample(ctx, spec, count)
}

// SampleBatch draws one noisy release per count from spec's owner.
func (rc *RingClient) SampleBatch(ctx context.Context, spec privcount.Spec, counts []int) ([]int, error) {
	c, err := rc.forSpec(spec)
	if err != nil {
		return nil, err
	}
	return c.SampleBatch(ctx, spec, counts)
}

// SampleBatchSeeded is SampleBatch with reproducible draws.
func (rc *RingClient) SampleBatchSeeded(ctx context.Context, spec privcount.Spec, seed uint64, counts []int) ([]int, error) {
	c, err := rc.forSpec(spec)
	if err != nil {
		return nil, err
	}
	return c.SampleBatchSeeded(ctx, spec, seed, counts)
}

// Estimate decodes observed outputs on spec's owning node.
func (rc *RingClient) Estimate(ctx context.Context, spec privcount.Spec, outputs []int) (*Estimate, error) {
	c, err := rc.forSpec(spec)
	if err != nil {
		return nil, err
	}
	return c.Estimate(ctx, spec, outputs)
}

// Query splits ops by their mechanisms' owning nodes, issues one
// /v2/query round trip per owner concurrently, and reassembles the
// results positionally — the same contract as Client.Query, minus the
// cross-node proxy hops. An op whose ID fails to resolve gets a typed
// per-op error in its slot; a failed per-owner round trip fails the
// whole call, matching Client.Query's transport-error contract.
func (rc *RingClient) Query(ctx context.Context, ops []Op) ([]OpResult, error) {
	results := make([]OpResult, len(ops))
	byOwner := make(map[*Client][]int)
	for i, op := range ops {
		// Hash the canonical ID — equivalent spellings of one spec must
		// land on one owner, exactly as the server-side ring hashes them.
		var spec privcount.Spec
		err := spec.UnmarshalText([]byte(op.ID))
		var c *Client
		if err == nil {
			c, err = rc.ownerClient(spec.ID())
		}
		if err != nil {
			var apiErr *Error
			if !errors.As(localError(err), &apiErr) {
				apiErr = &Error{Code: CodeSpecInvalid, Message: err.Error()}
			}
			results[i] = OpResult{Error: apiErr}
			continue
		}
		byOwner[c] = append(byOwner[c], i)
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for c, idxs := range byOwner {
		wg.Add(1)
		go func(c *Client, idxs []int) {
			defer wg.Done()
			sub := make([]Op, len(idxs))
			for j, i := range idxs {
				sub[j] = ops[i]
			}
			out, err := c.Query(ctx, sub)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			for j, i := range idxs {
				results[i] = out[j]
			}
		}(c, idxs)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
