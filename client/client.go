// Package client is the typed Go SDK for the privcountd v2 HTTP API.
//
// A mechanism is named once by its canonical spec token (privcount.Spec
// — see Spec.ID), created asynchronously, polled to readiness, and then
// queried cheaply, many operations per round trip:
//
//	c, err := client.New("http://localhost:8080")
//	spec := privcount.Spec{Kind: privcount.SpecLP, N: 64, Alpha: 0.5,
//		Props: privcount.WeakHonesty | privcount.ColumnMonotone}
//	if _, err := c.Create(ctx, spec); err != nil { ... }   // PUT, 202
//	if _, err := c.WaitReady(ctx, spec); err != nil { ... } // poll w/ backoff
//	results, err := c.Query(ctx, []client.Op{               // one round trip
//		client.SampleOp(spec, 17),
//		client.BatchOp(spec, []int{3, 10, 42}, nil),
//		client.EstimateOp(other, observed),
//	})
//
// Errors are typed end to end: every failure the server reports carries
// a machine-readable code ({"error":{"code":"build_canceled",...}}) that
// the SDK turns back into an error matching the package sentinels, so
// errors.Is(err, client.ErrBuildCanceled) works across the wire. The
// wire structs in this package are the same ones the server marshals.
//
// For high-throughput sampling, QueryStream switches the query exchange
// to the length-prefixed binary transport (see FrameWriter/FrameReader
// for the codec): unbounded op streams, positional results, no per-op
// JSON cost. WithRetry adds capped exponential backoff with jitter for
// transient failures (load-shed admissions, cut-short builds).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"privcount"
)

// Client talks to one privcountd base URL. It is safe for concurrent
// use; the zero value is not usable — construct with New.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy

	pollInitial time.Duration
	pollMax     time.Duration
}

// Option customises a Client.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client used for every request
// (timeouts, transports, instrumentation). The default is a dedicated
// client with no overall timeout — pass contexts to bound calls.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithPollInterval tunes WaitReady's backoff: polling starts at initial
// and doubles up to max. The defaults are 10ms and 1s.
func WithPollInterval(initial, max time.Duration) Option {
	return func(c *Client) { c.pollInitial, c.pollMax = initial, max }
}

// New returns a Client for the privcountd at baseURL (scheme and host,
// e.g. "http://localhost:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: invalid base URL %q", baseURL)
	}
	c := &Client{
		base:        strings.TrimRight(u.String(), "/"),
		hc:          &http.Client{},
		pollInitial: 10 * time.Millisecond,
		pollMax:     time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// specID validates spec client-side and returns its canonical token,
// typing local failures with the taxonomy so callers never branch on
// where an error arose.
func specID(spec privcount.Spec) (string, error) {
	token, err := spec.MarshalText()
	if err != nil {
		return "", localError(err)
	}
	return string(token), nil
}

// do executes one request and decodes the JSON response into out (when
// non-nil). Non-2xx responses are decoded as error envelopes and
// returned as *Error. Under WithRetry, retryable request-level errors
// are re-sent with backoff.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var b []byte
	if body != nil {
		var err error
		if b, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	return c.retry.retrying(ctx, func() error {
		return c.doOnce(ctx, method, path, b, out)
	})
}

// doOnce is one attempt of do: body is the pre-encoded JSON request
// body (nil for bodyless requests).
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeErrorEnvelope(resp, method, path)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeErrorEnvelope turns a non-2xx response into its typed *Error,
// preferring the envelope's back-off advice and falling back to the
// Retry-After header for servers that only set the header.
func decodeErrorEnvelope(resp *http.Response, method, path string) error {
	var env Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil {
		return fmt.Errorf("client: %s %s: unexpected status %d", method, path, resp.StatusCode)
	}
	env.Error.HTTPStatus = resp.StatusCode
	if env.Error.RetryAfterSeconds == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			env.Error.RetryAfterSeconds = float64(secs)
		}
	}
	return env.Error
}

// Create admits spec's mechanism for building (PUT /v2/mechanisms/{id})
// and returns its status document without waiting: builds run on the
// server's background pool and survive this request. Create on a ready
// or already-admitted mechanism is an idempotent status read. Follow
// with WaitReady (or poll Status) before querying expensive mechanisms;
// cheap closed-form mechanisms may simply be queried, which builds them
// on first touch.
func (c *Client) Create(ctx context.Context, spec privcount.Spec) (*MechanismStatus, error) {
	id, err := specID(spec)
	if err != nil {
		return nil, err
	}
	var st MechanismStatus
	if err := c.do(ctx, http.MethodPut, "/v2/mechanisms/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status reads spec's status document (GET /v2/mechanisms/{id}) without
// admitting anything: a never-created mechanism returns an error
// matching ErrNotAdmitted.
func (c *Client) Status(ctx context.Context, spec privcount.Spec) (*MechanismStatus, error) {
	id, err := specID(spec)
	if err != nil {
		return nil, err
	}
	var st MechanismStatus
	if err := c.do(ctx, http.MethodGet, "/v2/mechanisms/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitReady polls spec's status with exponential backoff (see
// WithPollInterval) until the build settles or ctx dies. It returns the
// ready status document; a failed build returns the typed build error
// (errors.Is(err, ErrBuildCanceled) for cut-short builds, ErrBuildFailed
// for deterministic failures), and a never-created mechanism returns
// ErrNotAdmitted — call Create first. A mechanism that was admitted but
// vanishes mid-poll (LRU eviction under cache pressure drops unwatched
// builds) is re-admitted transparently a few times before ErrNotAdmitted
// is reported. A not_ready answer (409 — the resource exists but its
// build is still settling, the artifact-era state cluster routing can
// surface) is polling state, not failure: WaitReady keeps waiting.
func (c *Client) WaitReady(ctx context.Context, spec privcount.Spec) (*MechanismStatus, error) {
	delay := c.pollInitial
	seen := false
	readmits := 0
	for {
		st, err := c.Status(ctx, spec)
		if err != nil {
			if errors.Is(err, ErrNotReady) {
				// The resource exists and is mid-build — exactly the
				// state this loop waits out. Fall through to the backoff
				// sleep instead of surfacing the 409.
				seen = true
				st = nil
			} else {
				// Only re-admit a resource this call has already observed:
				// a first-poll ErrNotAdmitted means the caller skipped
				// Create, and that contract stays loud.
				if errors.Is(err, ErrNotAdmitted) && seen && readmits < 3 {
					readmits++
					if _, cerr := c.Create(ctx, spec); cerr == nil {
						continue
					}
				}
				return nil, err
			}
		}
		if st != nil {
			seen = true
			if st.Ready() {
				return st, nil
			}
			if st.State == "failed" {
				if err := st.Err(); err != nil {
					return nil, err
				}
				return nil, ErrBuildFailed
			}
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
		if delay *= 2; delay > c.pollMax {
			delay = c.pollMax
		}
	}
}

// List returns the status document of every mechanism currently cached
// by the server (GET /v2/mechanisms), sorted by ID.
func (c *Client) List(ctx context.Context) ([]MechanismStatus, error) {
	var out MechanismList
	if err := c.do(ctx, http.MethodGet, "/v2/mechanisms", nil, &out); err != nil {
		return nil, err
	}
	return out.Mechanisms, nil
}

// Query executes a batch of heterogeneous operations — samples, batches,
// estimates, against any number of mechanisms — in one round trip (POST
// /v2/query). The returned slice matches ops positionally; each result
// carries either its payload or its own typed error, so one failed op
// does not poison the batch. Query itself errors only on transport or
// request-level failures (malformed batch, too many ops).
func (c *Client) Query(ctx context.Context, ops []Op) ([]OpResult, error) {
	var out QueryResponse
	if err := c.do(ctx, http.MethodPost, "/v2/query", QueryRequest{Ops: ops}, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(ops) {
		return nil, fmt.Errorf("client: query returned %d results for %d ops", len(out.Results), len(ops))
	}
	return out.Results, nil
}

// queryOne runs a single op through the multiplexed endpoint and
// surfaces its per-op error as the call's error. Since the op is the
// whole request, WithRetry applies to its per-op error too; the one
// retry loop here covers both failure levels (bypassing do's request
// loop), so a call never exceeds MaxAttempts round trips.
func (c *Client) queryOne(ctx context.Context, op Op) (*OpResult, error) {
	body, err := json.Marshal(QueryRequest{Ops: []Op{op}})
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	var out *OpResult
	err = c.retry.retrying(ctx, func() error {
		var resp QueryResponse
		if err := c.doOnce(ctx, http.MethodPost, "/v2/query", body, &resp); err != nil {
			return err
		}
		if len(resp.Results) != 1 {
			return fmt.Errorf("client: query returned %d results for 1 op", len(resp.Results))
		}
		if err := resp.Results[0].Err(); err != nil {
			return err
		}
		out = &resp.Results[0]
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Sample draws one noisy release for true count under spec, building
// the mechanism server-side on first touch.
func (c *Client) Sample(ctx context.Context, spec privcount.Spec, count int) (int, error) {
	id, err := specID(spec)
	if err != nil {
		return 0, err
	}
	res, err := c.queryOne(ctx, Op{Op: OpSample, ID: id, Count: count})
	if err != nil {
		return 0, err
	}
	if res.Output == nil {
		return 0, fmt.Errorf("client: sample result missing output")
	}
	return *res.Output, nil
}

// SampleBatch draws one noisy release per true count under spec.
func (c *Client) SampleBatch(ctx context.Context, spec privcount.Spec, counts []int) ([]int, error) {
	return c.sampleBatch(ctx, spec, counts, nil)
}

// SampleBatchSeeded is SampleBatch with reproducible draws: the outputs
// are exactly those of a fresh seeded generator consumed one count at a
// time, matching the server's seeded single-shot sampling.
func (c *Client) SampleBatchSeeded(ctx context.Context, spec privcount.Spec, seed uint64, counts []int) ([]int, error) {
	return c.sampleBatch(ctx, spec, counts, &seed)
}

func (c *Client) sampleBatch(ctx context.Context, spec privcount.Spec, counts []int, seed *uint64) ([]int, error) {
	id, err := specID(spec)
	if err != nil {
		return nil, err
	}
	res, err := c.queryOne(ctx, Op{Op: OpBatch, ID: id, Counts: counts, Seed: seed})
	if err != nil {
		return nil, err
	}
	return res.Outputs, nil
}

// Estimate decodes observed outputs under spec: the per-output MLE
// inputs plus the debiased (unbiased when available) aggregate.
func (c *Client) Estimate(ctx context.Context, spec privcount.Spec, outputs []int) (*Estimate, error) {
	id, err := specID(spec)
	if err != nil {
		return nil, err
	}
	res, err := c.queryOne(ctx, Op{Op: OpEstimate, ID: id, Outputs: outputs})
	if err != nil {
		return nil, err
	}
	est := res.Estimate()
	if est == nil {
		return nil, fmt.Errorf("client: estimate result missing payload")
	}
	return est, nil
}
