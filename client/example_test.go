package client_test

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"privcount"
	"privcount/client"
	"privcount/internal/httpapi"
	"privcount/internal/service"
)

// Example walks the v2 protocol end to end: name a mechanism by its
// canonical spec, create it asynchronously, wait for the build, then
// answer several questions in one multiplexed round trip. The server
// here is in-process; point New at a real privcountd in production.
func Example() {
	svc := service.New(service.Config{Seed: 1}) // seeded for a stable example
	defer svc.Close()
	srv := httptest.NewServer(httpapi.NewMux(svc))
	defer srv.Close()

	c, err := client.New(srv.URL)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// A spec names its mechanism: equivalent property sets share one ID.
	spec := privcount.Spec{Kind: privcount.SpecChoose, N: 8, Alpha: 0.8,
		Props: privcount.Fairness}
	fmt.Println("id:", spec.ID())

	// Create admits the build to the server's background pool;
	// WaitReady polls with backoff until it is servable.
	if _, err := c.Create(ctx, spec); err != nil {
		log.Fatal(err)
	}
	st, err := c.WaitReady(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mechanism:", st.Mechanism.Name, "rule:", st.Mechanism.Rule)

	// One round trip, three operations: a reproducible batch of noisy
	// releases plus the debiased decode of some observed outputs.
	results, err := c.Query(ctx, []client.Op{
		client.BatchOp(spec, []int{0, 4, 8}, ptr(uint64(7))),
		client.EstimateOp(spec, []int{4, 4, 4}),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("noisy:", results[0].Outputs)
	fmt.Printf("debiased mean: %.2f\n", *results[1].Mean)

	// Output:
	// id: choose:n=8:a=0.8:F
	// mechanism: EM rule: fairness => EM
	// noisy: [3 3 7]
	// debiased mean: 4.00
}

func ptr[T any](v T) *T { return &v }

// ExampleClient_ImportArtifact shows replica warm sync: server A builds
// an LP-backed mechanism (expensive), B imports A's exported artifact
// and serves it immediately — B's solver never runs. The artifact
// encoding is deterministic, so what B re-exports is byte-identical to
// what A sent and both replicas present the same artifact ETag.
func ExampleClient_ImportArtifact() {
	newServer := func(seed uint64) (*service.Service, *httptest.Server) {
		svc := service.New(service.Config{Seed: seed})
		return svc, httptest.NewServer(httpapi.NewMux(svc))
	}
	svcA, srvA := newServer(1)
	defer svcA.Close()
	defer srvA.Close()
	svcB, srvB := newServer(2)
	defer svcB.Close()
	defer srvB.Close()

	ctx := context.Background()
	a, err := client.New(srvA.URL)
	if err != nil {
		log.Fatal(err)
	}
	b, err := client.New(srvB.URL)
	if err != nil {
		log.Fatal(err)
	}

	// A pays the LP solve once.
	spec := privcount.Spec{Kind: privcount.SpecLP, N: 16, Alpha: 0.5,
		Props: privcount.WeakHonesty | privcount.ColumnMonotone}
	if _, err := a.Create(ctx, spec); err != nil {
		log.Fatal(err)
	}
	if _, err := a.WaitReady(ctx, spec); err != nil {
		log.Fatal(err)
	}

	// Export from A, import into B: no Create, no build, no wait.
	artifact, err := a.ExportArtifact(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	st, err := b.ImportArtifact(ctx, spec, artifact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("imported state:", st.State)

	// B serves immediately; its solver never ran.
	results, err := b.Query(ctx, []client.Op{
		client.BatchOp(spec, []int{0, 8, 16}, ptr(uint64(7))),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("noisy from B:", results[0].Outputs)

	again, err := b.ExportArtifact(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("byte-identical re-export:", bytes.Equal(artifact, again))

	// Output:
	// imported state: ready
	// noisy from B: [0 6 13]
	// byte-identical re-export: true
}
