package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"privcount"
	"privcount/internal/cluster"
)

// fakeNode is a minimal fleet member: it serves the cluster topology
// document and answers queries and status reads, counting what lands on
// it so tests can assert client-side routing sent each request to the
// owner and nowhere else.
type fakeNode struct {
	url     string   // set after the listener binds
	peers   []string // the shared fleet view, set after all bind
	queries atomic.Int64
	status  atomic.Int64
}

func (n *fakeNode) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2/cluster", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(ClusterStatus{
			Self: n.url, Peers: n.peers, Replication: 1, VirtualNodes: 64, RouteMode: "proxy",
		})
	})
	mux.HandleFunc("POST /v2/query", func(w http.ResponseWriter, r *http.Request) {
		n.queries.Add(1)
		var req QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results := make([]OpResult, len(req.Ops))
		for i := range req.Ops {
			out := i + 1 // position-dependent, so reassembly mistakes show
			results[i] = OpResult{Output: &out}
		}
		json.NewEncoder(w).Encode(QueryResponse{Results: results})
	})
	mux.HandleFunc("GET /v2/mechanisms/{id}", func(w http.ResponseWriter, r *http.Request) {
		n.status.Add(1)
		var spec privcount.Spec
		if err := spec.UnmarshalText([]byte(r.PathValue("id"))); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(MechanismStatus{ID: spec.ID(), Spec: spec, State: "ready"})
	})
	return mux
}

// startFakeFleet boots n fake nodes that all advertise the same peer
// set via GET /v2/cluster.
func startFakeFleet(t *testing.T, n int) []*fakeNode {
	t.Helper()
	nodes := make([]*fakeNode, n)
	urls := make([]string, n)
	for i := range nodes {
		nodes[i] = &fakeNode{}
		ts := httptest.NewServer(nodes[i].handler())
		t.Cleanup(ts.Close)
		nodes[i].url = ts.URL
		urls[i] = ts.URL
	}
	for _, fn := range nodes {
		fn.peers = urls
	}
	return nodes
}

// nodeFor returns the fake node owning spec under the same ring the
// RingClient rebuilds from the topology document.
func nodeFor(t *testing.T, nodes []*fakeNode, spec privcount.Spec) *fakeNode {
	t.Helper()
	peers := make([]cluster.Peer, len(nodes))
	for i, fn := range nodes {
		peers[i] = cluster.Peer{URL: fn.url}
	}
	ring, err := cluster.NewRing(peers, 64)
	if err != nil {
		t.Fatal(err)
	}
	id, err := specID(spec)
	if err != nil {
		t.Fatal(err)
	}
	owner := ring.Owner(id).URL
	for _, fn := range nodes {
		if fn.url == owner {
			return fn
		}
	}
	t.Fatalf("owner %s not among fake nodes", owner)
	return nil
}

// specOwnedBy scans group sizes until it finds a spec owned by each of
// want distinct nodes, so routing tests always have cross-node traffic.
func specsAcrossOwners(t *testing.T, nodes []*fakeNode) (a, b privcount.Spec) {
	t.Helper()
	var first privcount.Spec
	firstOwner := (*fakeNode)(nil)
	for n := 4; n <= 256; n *= 2 {
		spec := privcount.Spec{Kind: privcount.SpecGeometric, N: n, Alpha: 0.5}
		owner := nodeFor(t, nodes, spec)
		if firstOwner == nil {
			first, firstOwner = spec, owner
			continue
		}
		if owner != firstOwner {
			return first, spec
		}
	}
	t.Fatal("no two specs with distinct owners among n=4..256")
	return
}

// TestRingClientRoutesToOwner pins client-side routing: every call for
// a spec lands on the ring owner's node and only there.
func TestRingClientRoutesToOwner(t *testing.T) {
	nodes := startFakeFleet(t, 3)
	ctx := context.Background()
	rc, err := NewRingClient(ctx, nodes[0].url)
	if err != nil {
		t.Fatalf("NewRingClient: %v", err)
	}
	if got := rc.Peers(); len(got) != 3 {
		t.Fatalf("Peers = %v, want 3 entries", got)
	}

	specA, specB := specsAcrossOwners(t, nodes)
	ownerB := nodeFor(t, nodes, specB)
	if _, err := rc.Sample(ctx, specB, 3); err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if got := ownerB.queries.Load(); got != 1 {
		t.Errorf("owner saw %d queries, want 1", got)
	}
	for _, fn := range nodes {
		if fn != ownerB && fn.queries.Load() != 0 {
			t.Errorf("non-owner %s saw %d queries, want 0", fn.url, fn.queries.Load())
		}
	}

	ownerA := nodeFor(t, nodes, specA)
	if st, err := rc.Status(ctx, specA); err != nil || st.State != "ready" {
		t.Fatalf("Status = %+v, %v", st, err)
	}
	if got := ownerA.status.Load(); got != 1 {
		t.Errorf("owner saw %d status reads, want 1", got)
	}
}

// TestRingClientQuerySplitsAndReassembles pins the mixed-owner Query
// contract: ops are grouped per owner, one round trip each, results
// return in op order, and an unresolvable ID yields a typed per-op
// error without failing the batch.
func TestRingClientQuerySplitsAndReassembles(t *testing.T) {
	nodes := startFakeFleet(t, 3)
	ctx := context.Background()
	rc, err := NewRingClient(ctx, nodes[0].url)
	if err != nil {
		t.Fatalf("NewRingClient: %v", err)
	}
	specA, specB := specsAcrossOwners(t, nodes)
	ops := []Op{
		SampleOp(specA, 1),
		{Op: "sample", ID: "not a spec", Count: 1},
		SampleOp(specB, 2),
		SampleOp(specA, 3),
	}
	results, err := rc.Query(ctx, ops)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(results) != len(ops) {
		t.Fatalf("got %d results, want %d", len(results), len(ops))
	}
	if results[1].Error == nil || results[1].Error.Code != CodeSpecInvalid {
		t.Errorf("bad-ID slot = %+v, want spec_invalid error", results[1])
	}
	// specA's owner served ops 0 and 3 in one round trip (outputs 1 and
	// 2 in sub-batch order); specB's owner served op 2 alone (output 1).
	for i, want := range map[int]int{0: 1, 2: 1, 3: 2} {
		if results[i].Error != nil || results[i].Output == nil || *results[i].Output != want {
			t.Errorf("results[%d] = %+v, want output %d", i, results[i], want)
		}
	}
	total := int64(0)
	for _, fn := range nodes {
		total += fn.queries.Load()
	}
	if total != 2 {
		t.Errorf("fleet saw %d query round trips, want 2 (one per owner)", total)
	}
	if got := nodeFor(t, nodes, specA).queries.Load(); got != 1 {
		t.Errorf("specA owner saw %d round trips, want 1", got)
	}
}

// TestRingClientRefresh pins topology refresh: a fleet answer that
// shrinks to one node collapses all routing onto it.
func TestRingClientRefresh(t *testing.T) {
	nodes := startFakeFleet(t, 2)
	ctx := context.Background()
	rc, err := NewRingClient(ctx, nodes[0].url)
	if err != nil {
		t.Fatalf("NewRingClient: %v", err)
	}
	// The fleet view shrinks to just the seed node; Refresh must adopt it.
	for _, fn := range nodes {
		fn.peers = []string{nodes[0].url}
	}
	if err := rc.Refresh(ctx); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if got := rc.Peers(); len(got) != 1 || got[0] != nodes[0].url {
		t.Fatalf("Peers after shrink = %v, want just the seed", got)
	}
	for i := 0; i < 4; i++ {
		spec := privcount.Spec{Kind: privcount.SpecGeometric, N: 4 << i, Alpha: 0.5}
		if _, err := rc.Sample(ctx, spec, 1); err != nil {
			t.Fatalf("Sample after shrink: %v", err)
		}
	}
	if got := nodes[1].queries.Load(); got != 0 {
		t.Errorf("removed node still saw %d queries", got)
	}
}

// TestClusterStatusNotServed pins the single-box behaviour: a server
// without the cluster layer answers /v2/cluster with the typed 404.
func TestClusterStatusNotServed(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(Envelope{Error: &Error{Code: CodeNotAdmitted, Message: "no cluster"}})
	}))
	t.Cleanup(ts.Close)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ClusterStatus(context.Background()); err == nil {
		t.Fatal("ClusterStatus on a single box succeeded, want typed error")
	} else if fmt.Sprint(err) == "" {
		t.Fatal("empty error")
	}
}
