package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"privcount"
)

// This file is the SDK side of the /v2 artifact routes: binary export
// and import of built mechanisms, which is how a replica warm-syncs
// from a peer instead of re-running the solver. The bytes are opaque to
// the SDK — the server's versioned artifact codec defines them — and
// deterministic: the same built mechanism exports the same bytes on
// every replica.

// ContentTypeArtifact is the media type of encoded mechanism artifacts,
// the body of GET/PUT /v2/mechanisms/{id}/artifact.
const ContentTypeArtifact = "application/x-privcount-artifact"

// MaxArtifactBytes bounds how large an artifact ExportArtifact will
// read; it mirrors the server-side decode ceiling, which the largest
// legal mechanism (n=4096) fits with room to spare.
const MaxArtifactBytes = 256 << 20

// ExportArtifact downloads the built mechanism for spec in its
// canonical binary artifact form (GET /v2/mechanisms/{id}/artifact).
// Mechanisms never admitted error with ErrNotAdmitted — export never
// triggers a build — and builds still in flight with ErrNotReady
// (retryable: poll WaitReady or just retry). Feed the bytes to another
// server's ImportArtifact to make the mechanism servable there with no
// build.
func (c *Client) ExportArtifact(ctx context.Context, spec privcount.Spec) ([]byte, error) {
	id, err := specID(spec)
	if err != nil {
		return nil, err
	}
	path := "/v2/mechanisms/" + url.PathEscape(id) + "/artifact"
	var data []byte
	err = c.retry.retrying(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
		if err != nil {
			return fmt.Errorf("client: building request: %w", err)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return fmt.Errorf("client: GET %s: %w", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			return decodeErrorEnvelope(resp, http.MethodGet, path)
		}
		data, err = io.ReadAll(io.LimitReader(resp.Body, MaxArtifactBytes+1))
		if err != nil {
			return fmt.Errorf("client: reading artifact: %w", err)
		}
		if len(data) > MaxArtifactBytes {
			return fmt.Errorf("client: artifact exceeds %d bytes", MaxArtifactBytes)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// ImportArtifact uploads a pre-built mechanism artifact for spec (PUT
// /v2/mechanisms/{id}/artifact) — the replica warm-sync path. The
// server decodes, checks the artifact against spec, and fully
// re-verifies the mechanism before installing it; a bad or mismatched
// artifact errors with ErrArtifactInvalid and changes nothing. On
// success the returned status document is ready: the mechanism serves
// immediately, no build, and Query needs no prior Create.
func (c *Client) ImportArtifact(ctx context.Context, spec privcount.Spec, artifact []byte) (*MechanismStatus, error) {
	id, err := specID(spec)
	if err != nil {
		return nil, err
	}
	path := "/v2/mechanisms/" + url.PathEscape(id) + "/artifact"
	var st MechanismStatus
	err = c.retry.retrying(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+path, bytes.NewReader(artifact))
		if err != nil {
			return fmt.Errorf("client: building request: %w", err)
		}
		req.Header.Set("Content-Type", ContentTypeArtifact)
		resp, err := c.hc.Do(req)
		if err != nil {
			return fmt.Errorf("client: PUT %s: %w", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			return decodeErrorEnvelope(resp, http.MethodPut, path)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return fmt.Errorf("client: decoding PUT %s response: %w", path, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}
