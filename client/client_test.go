package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"privcount"
	"privcount/client"
	"privcount/internal/httpapi"
	"privcount/internal/service"
)

// newTestClient mounts the real route set over a fresh service and
// returns an SDK client against it plus the service handle (for
// shutdown-driven tests).
func newTestClient(t *testing.T, cfg service.Config) (*client.Client, *service.Service) {
	t.Helper()
	svc := service.New(cfg)
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(httpapi.NewMux(svc))
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c, svc
}

// TestEndToEndCreateWaitQuery is the acceptance round trip: Create an
// lp spec, WaitReady polls it to ready, and one multiplexed Query
// carries a sample, a batch and an estimate against two different
// mechanism IDs with per-op results.
func TestEndToEndCreateWaitQuery(t *testing.T) {
	c, _ := newTestClient(t, service.Config{Capacity: 32, Seed: 7})
	ctx := context.Background()

	lp := privcount.Spec{Kind: privcount.SpecLP, N: 8, Alpha: 0.7,
		Props: privcount.WeakHonesty | privcount.Symmetry}
	gm := privcount.Spec{Kind: privcount.SpecGeometric, N: 10, Alpha: 0.6}

	st, err := c.Create(ctx, lp)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if st.ID != lp.ID() {
		t.Errorf("Create returned id %q, want %q", st.ID, lp.ID())
	}
	ready, err := c.WaitReady(ctx, lp)
	if err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	if !ready.Ready() || ready.Mechanism == nil {
		t.Fatalf("WaitReady doc = %+v, want ready with mechanism detail", ready)
	}

	seed := uint64(42)
	results, err := c.Query(ctx, []client.Op{
		client.SampleOp(lp, 3),
		client.BatchOp(gm, []int{0, 5, 10}, &seed),
		client.EstimateOp(gm, []int{4, 4, 4}),
	})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, r := range results {
		if err := r.Err(); err != nil {
			t.Fatalf("op %d errored: %v", i, err)
		}
	}
	if out := results[0].Output; out == nil || *out < 0 || *out > 8 {
		t.Errorf("sample result = %v", results[0])
	}
	if len(results[1].Outputs) != 3 {
		t.Errorf("batch result = %v", results[1])
	}
	est := results[2].Estimate()
	if est == nil || !est.Unbiased || len(est.MLE) != 3 {
		t.Errorf("estimate result = %+v", est)
	}

	// The convenience wrappers ride the same wire: a seeded batch is
	// reproducible against the multiplexed call.
	direct, err := c.SampleBatchSeeded(ctx, gm, seed, []int{0, 5, 10})
	if err != nil {
		t.Fatalf("SampleBatchSeeded: %v", err)
	}
	if !reflect.DeepEqual(direct, results[1].Outputs) {
		t.Errorf("seeded batch diverged: %v vs %v", direct, results[1].Outputs)
	}
	if _, err := c.Sample(ctx, gm, 4); err != nil {
		t.Errorf("Sample: %v", err)
	}
	if outs, err := c.SampleBatch(ctx, gm, []int{1, 2}); err != nil || len(outs) != 2 {
		t.Errorf("SampleBatch = %v, %v", outs, err)
	}
	if est2, err := c.Estimate(ctx, gm, []int{4, 4, 4}); err != nil || est2.Sum != est.Sum {
		t.Errorf("Estimate = %+v, %v; want sum %v", est2, err, est.Sum)
	}
}

// TestEquivalentSpecsShareResource pins identity semantics through the
// SDK: closure-equivalent specs resolve to one mechanism ID and one
// server-side resource.
func TestEquivalentSpecsShareResource(t *testing.T) {
	c, _ := newTestClient(t, service.Config{Capacity: 32, Seed: 7})
	ctx := context.Background()

	cm := privcount.Spec{Kind: privcount.SpecLP, N: 8, Alpha: 0.7, Props: privcount.ColumnMonotone}
	cmch := privcount.Spec{Kind: privcount.SpecLP, N: 8, Alpha: 0.7,
		Props: privcount.ColumnMonotone | privcount.ColumnHonesty}
	if cm.ID() != cmch.ID() {
		t.Fatalf("client-side IDs differ: %q vs %q", cm.ID(), cmch.ID())
	}
	st1, err := c.Create(ctx, cm)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Create(ctx, cmch)
	if err != nil {
		t.Fatal(err)
	}
	if st1.ID != st2.ID {
		t.Errorf("server resolved different resources: %q vs %q", st1.ID, st2.ID)
	}
	if _, err := c.WaitReady(ctx, cmch); err != nil {
		t.Fatal(err)
	}
	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Errorf("server caches %d resources, want 1 (shared identity)", len(list))
	}
}

// TestCanceledBuildTypedError pins the acceptance criterion that a
// cancelled build surfaces to the SDK as a typed error matching the
// build_canceled code: a slow minimax build is cut short by server
// shutdown and WaitReady reports it as ErrBuildCanceled.
func TestCanceledBuildTypedError(t *testing.T) {
	c, svc := newTestClient(t, service.Config{Capacity: 32, Seed: 7})
	ctx := context.Background()

	slow := privcount.Spec{Kind: privcount.SpecLPMinimax, N: service.MaxLPMinimaxN, Alpha: 0.9}
	if _, err := c.Create(ctx, slow); err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Cut the build short: Close cancels the in-flight solve mid-pivot
	// and settles the entry failed-rebuildable. Serving (and status
	// reads) keep working after Close.
	svc.Close()

	_, err := c.WaitReady(ctx, slow)
	if err == nil {
		t.Fatal("WaitReady succeeded on a cancelled build")
	}
	if !errors.Is(err, client.ErrBuildCanceled) {
		t.Fatalf("WaitReady err = %v, want errors.Is ErrBuildCanceled", err)
	}
	var apiErr *client.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("WaitReady err %T does not expose *client.Error", err)
	}
	if apiErr.Code != client.CodeBuildCanceled || apiErr.Message == "" {
		t.Errorf("typed error = %+v, want build_canceled with message", apiErr)
	}
}

// TestTypedErrorTaxonomy exercises each error class through the SDK,
// local and remote alike.
func TestTypedErrorTaxonomy(t *testing.T) {
	c, _ := newTestClient(t, service.Config{Capacity: 32, Seed: 7})
	ctx := context.Background()

	// Local: an invalid spec never reaches the wire.
	bad := privcount.Spec{Kind: privcount.SpecGeometric, N: 8, Alpha: 1.5}
	if _, err := c.Create(ctx, bad); !errors.Is(err, client.ErrSpecInvalid) {
		t.Errorf("invalid spec err = %v, want ErrSpecInvalid", err)
	}
	var apiErr *client.Error
	if _, err := c.Sample(ctx, bad, 1); !errors.As(err, &apiErr) || apiErr.HTTPStatus != 0 {
		t.Errorf("local error = %v, want *client.Error with HTTPStatus 0", err)
	}

	// Local: over-limit specs.
	over := privcount.Spec{Kind: privcount.SpecLP, N: service.MaxLPN + 1, Alpha: 0.5}
	if _, err := c.Create(ctx, over); !errors.Is(err, client.ErrOverLimit) {
		t.Errorf("over-limit err = %v, want ErrOverLimit", err)
	}

	// Remote: status of a never-created mechanism.
	absent := privcount.Spec{Kind: privcount.SpecGeometric, N: 9, Alpha: 0.5}
	_, err := c.Status(ctx, absent)
	if !errors.Is(err, client.ErrNotAdmitted) {
		t.Errorf("Status err = %v, want ErrNotAdmitted", err)
	}
	if !errors.As(err, &apiErr) || apiErr.HTTPStatus != 404 {
		t.Errorf("remote error = %v, want HTTPStatus 404", err)
	}
	if _, err := c.WaitReady(ctx, absent); !errors.Is(err, client.ErrNotAdmitted) {
		t.Errorf("WaitReady on absent = %v, want ErrNotAdmitted", err)
	}

	// Remote: request-level over_limit on an oversized batch.
	ops := make([]client.Op, client.MaxQueryOps+1)
	gm := privcount.Spec{Kind: privcount.SpecGeometric, N: 8, Alpha: 0.5}
	for i := range ops {
		ops[i] = client.SampleOp(gm, 1)
	}
	if _, err := c.Query(ctx, ops); !errors.Is(err, client.ErrOverLimit) {
		t.Errorf("oversized query err = %v, want ErrOverLimit", err)
	}

	// Remote: per-op error does not fail the batch.
	results, err := c.Query(ctx, []client.Op{
		client.SampleOp(gm, 2),
		{Op: client.OpSample, ID: "bogus", Count: 1},
	})
	if err != nil {
		t.Fatalf("Query with one bad op: %v", err)
	}
	if results[0].Err() != nil {
		t.Errorf("good op failed: %v", results[0].Err())
	}
	if !errors.Is(results[1].Err(), client.ErrSpecInvalid) {
		t.Errorf("bad op err = %v, want ErrSpecInvalid", results[1].Err())
	}
}

// TestWaitReadyHonoursContext pins that polling stops when the caller's
// context dies mid-build.
func TestWaitReadyHonoursContext(t *testing.T) {
	c, _ := newTestClient(t, service.Config{Capacity: 32, Seed: 7})
	slow := privcount.Spec{Kind: privcount.SpecLPMinimax, N: service.MaxLPMinimaxN, Alpha: 0.9}
	if _, err := c.Create(context.Background(), slow); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.WaitReady(ctx, slow)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitReady = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("WaitReady took %v to notice a dead context", time.Since(start))
	}
}

// TestNewRejectsBadURLs pins constructor validation.
func TestNewRejectsBadURLs(t *testing.T) {
	for _, u := range []string{"", "not a url", "localhost:8080"} {
		if _, err := client.New(u); err == nil {
			t.Errorf("New(%q) succeeded", u)
		}
	}
}

// TestWaitReadyTreatsNotReadyAsPolling pins the artifact-era 409: a
// status poll answered with the not_ready envelope is a "still
// settling" signal, so WaitReady keeps polling instead of surfacing the
// error — end to end, against a fake server that conflicts a few times
// before turning ready.
func TestWaitReadyTreatsNotReadyAsPolling(t *testing.T) {
	spec := privcount.Spec{Kind: privcount.SpecGeometric, N: 8, Alpha: 0.5}
	id := spec.ID()
	polls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v2/mechanisms/"+id {
			t.Errorf("unexpected path %s", r.URL.Path)
			http.NotFound(w, r)
			return
		}
		polls++
		w.Header().Set("Content-Type", "application/json")
		if polls <= 3 {
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(client.Envelope{Error: &client.Error{
				Code: client.CodeNotReady, Message: "build settling",
			}})
			return
		}
		json.NewEncoder(w).Encode(client.MechanismStatus{ID: id, Spec: spec, State: "ready"})
	}))
	t.Cleanup(ts.Close)

	c, err := client.New(ts.URL, client.WithPollInterval(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := c.WaitReady(ctx, spec)
	if err != nil {
		t.Fatalf("WaitReady through not_ready conflicts: %v", err)
	}
	if !st.Ready() {
		t.Fatalf("WaitReady returned state %q", st.State)
	}
	if polls < 4 {
		t.Fatalf("server saw %d polls, want the 3 conflicts plus the ready read", polls)
	}
}
