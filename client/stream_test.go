package client_test

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"reflect"
	"testing"

	"privcount"
	"privcount/client"
	"privcount/internal/httpapi"
	"privcount/internal/service"
)

// TestQueryStreamEndToEnd drives the SDK's binary stream against the
// real route set: send a mixed op sequence (beyond the buffered-mode
// cap, since streams are uncapped), close the send side, and require
// positional results matching the JSON transport's answers for the
// deterministic ops.
func TestQueryStreamEndToEnd(t *testing.T) {
	c, _ := newTestClient(t, service.Config{Capacity: 16, Seed: 5})
	ctx := context.Background()
	spec := privcount.Spec{Kind: privcount.SpecGeometric, N: 10, Alpha: 0.6}
	seed := uint64(11)

	// JSON reference answers for the deterministic ops.
	ref, err := c.Query(ctx, []client.Op{
		client.BatchOp(spec, []int{0, 5, 10}, &seed),
		client.EstimateOp(spec, []int{4, 4, 4}),
	})
	if err != nil {
		t.Fatal(err)
	}

	s, err := c.QueryStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// More ops than the buffered cap proves streams are uncapped.
	n := client.MaxQueryOps + 32
	go func() {
		for i := 0; i < n; i++ {
			var op client.Op
			switch i % 3 {
			case 0:
				op = client.BatchOp(spec, []int{0, 5, 10}, &seed)
			case 1:
				op = client.EstimateOp(spec, []int{4, 4, 4})
			default:
				op = client.SampleOp(spec, i%10)
			}
			if err := s.Send(&op); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
		if err := s.CloseSend(); err != nil {
			t.Errorf("close send: %v", err)
		}
	}()

	for i := 0; i < n; i++ {
		res, err := s.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if err := res.Err(); err != nil {
			t.Fatalf("op %d failed: %v", i, err)
		}
		switch i % 3 {
		case 0:
			if !reflect.DeepEqual(res.Outputs, ref[0].Outputs) {
				t.Fatalf("op %d: seeded batch %v diverged from JSON transport %v", i, res.Outputs, ref[0].Outputs)
			}
		case 1:
			if !reflect.DeepEqual(res.Estimate(), ref[1].Estimate()) {
				t.Fatalf("op %d: estimate %+v diverged from JSON transport %+v", i, res.Estimate(), ref[1].Estimate())
			}
		default:
			if res.Output == nil {
				t.Fatalf("op %d: sample result missing output", i)
			}
		}
	}
	if _, err := s.Recv(); err != io.EOF {
		t.Fatalf("after final result: err = %v, want io.EOF", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestQueryStreamPerOpErrors pins that op failures ride the stream as
// positional typed errors without ending it.
func TestQueryStreamPerOpErrors(t *testing.T) {
	c, _ := newTestClient(t, service.Config{Capacity: 16, Seed: 5})
	spec := privcount.Spec{Kind: privcount.SpecGeometric, N: 8, Alpha: 0.5}

	s, err := c.QueryStream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ops := []client.Op{
		client.SampleOp(spec, 99), // out of range
		{Op: client.OpSample, ID: "not-a-kind:n=8", Count: 1},
		client.SampleOp(spec, 3), // fine
	}
	for i := range ops {
		if err := s.Send(&ops[i]); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := s.CloseSend(); err != nil {
		t.Fatal(err)
	}

	wantCodes := []error{client.ErrSpecInvalid, client.ErrSpecInvalid, nil}
	for i, want := range wantCodes {
		res, err := s.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if want == nil {
			if res.Err() != nil || res.Output == nil {
				t.Fatalf("op %d: %+v, want a sample payload", i, res)
			}
			continue
		}
		if !errors.Is(res.Err(), want) {
			t.Fatalf("op %d: err = %v, want %v", i, res.Err(), want)
		}
	}
	if _, err := s.Recv(); err != io.EOF {
		t.Fatalf("tail: err = %v, want io.EOF", err)
	}
}

// TestQueryStreamRefusedTransport pins that a stream whose request
// never reaches a live server surfaces the failure from Recv instead
// of hanging.
func TestQueryStreamRefusedTransport(t *testing.T) {
	svc := service.New(service.Config{Capacity: 4, Seed: 1})
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(httpapi.NewMux(svc))
	ts.Close() // immediately: every dial fails
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.QueryStream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	op := client.Op{Op: client.OpSample, ID: "gm:n=8:a=0.5", Count: 1}
	// Send may or may not fail (the pipe buffers); Recv must error.
	_ = s.Send(&op)
	_ = s.CloseSend()
	if _, err := s.Recv(); err == nil || err == io.EOF {
		t.Fatalf("recv against dead server: err = %v", err)
	}
}

// TestQueryStreamCancel pins that context cancellation tears down a
// stream mid-exchange instead of deadlocking either side.
func TestQueryStreamCancel(t *testing.T) {
	c, _ := newTestClient(t, service.Config{Capacity: 16, Seed: 5})
	ctx, cancel := context.WithCancel(context.Background())
	s, err := c.QueryStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	spec := privcount.Spec{Kind: privcount.SpecGeometric, N: 8, Alpha: 0.5}
	op := client.SampleOp(spec, 1)
	if err := s.Send(&op); err != nil {
		t.Fatal(err)
	}
	cancel()
	// Without CloseSend the server still holds the op stream open; the
	// cancelled context must fail Recv rather than park it forever.
	if _, err := s.Recv(); err == nil {
		t.Fatal("recv on cancelled stream returned a result")
	}
	if err := s.Close(); err != nil && !errors.Is(err, context.Canceled) {
		t.Logf("close after cancel: %v", err)
	}
}
