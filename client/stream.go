package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Stream is a live binary /v2/query exchange: ops go up and results
// come back positionally over one HTTP request, with no cap on the op
// count and no per-request JSON overhead. Obtain one with
// Client.QueryStream.
//
// The send and receive sides are independent: one goroutine may Send
// while another Recvs. Neither side is safe for concurrent use with
// itself. Results arrive in op order; the server answers as it reads,
// but may buffer a bounded number of results before flushing, so a
// caller that Sends one op and blocks on Recv should CloseSend first
// (or keep enough ops in flight to fill the server's flush window).
type Stream struct {
	pw     *io.PipeWriter
	fw     *FrameWriter
	respc  chan *http.Response
	errc   chan error
	ctx    context.Context
	cancel context.CancelFunc

	resp    *http.Response // set by first Recv
	fr      *FrameReader
	sendErr error
	recvErr error
}

// QueryStream opens a streaming query against POST /v2/query using the
// length-prefixed binary transport in both directions. The exchange
// lives until CloseSend has been called and every result has been
// Recv'd (then Recv returns io.EOF), or until Close or ctx tears it
// down. WithRetry does not apply: a stream is stateful, and the caller
// owns resumption.
func (c *Client) QueryStream(ctx context.Context) (*Stream, error) {
	ctx, cancel := context.WithCancel(ctx)
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v2/query", pr)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	req.Header.Set("Content-Type", ContentTypeBinary)
	req.Header.Set("Accept", ContentTypeBinary)
	s := &Stream{
		pw:     pw,
		fw:     NewFrameWriter(pw),
		respc:  make(chan *http.Response, 1),
		errc:   make(chan error, 1),
		ctx:    ctx,
		cancel: cancel,
	}
	go func() {
		resp, err := c.hc.Do(req)
		if err != nil {
			// Unblock any Send stuck writing into the abandoned body.
			pr.CloseWithError(err)
			s.errc <- fmt.Errorf("client: POST /v2/query: %w", err)
			return
		}
		s.respc <- resp
	}()
	return s, nil
}

// Send frames one op onto the stream. It blocks when the server (or
// the transport) applies backpressure — drain results concurrently for
// unbounded streams.
func (s *Stream) Send(op *Op) error {
	if s.sendErr != nil {
		return s.sendErr
	}
	if err := s.fw.WriteOp(op); err != nil {
		s.sendErr = err
		return err
	}
	// Flush through the pipe so the server sees the op immediately;
	// without it a frame could sit in the bufio buffer while the caller
	// waits on Recv.
	if err := s.fw.Flush(); err != nil {
		s.sendErr = err
		return err
	}
	return nil
}

// CloseSend ends the op stream cleanly: the server answers every op
// already sent, then ends the result stream, after which Recv returns
// io.EOF. Send after CloseSend fails.
func (s *Stream) CloseSend() error {
	if s.sendErr != nil {
		return s.sendErr
	}
	s.sendErr = fmt.Errorf("client: stream send side closed")
	if err := s.fw.Close(); err != nil {
		s.pw.CloseWithError(err)
		return err
	}
	return s.pw.Close()
}

// Recv returns the next result, in op order. It returns io.EOF after
// the final result of a CloseSend'd stream; a server-side abort
// surfaces as the typed *Error it carried. Recv blocks until the
// server flushes — see the Stream contract.
func (s *Stream) Recv() (*OpResult, error) {
	if s.recvErr != nil {
		return nil, s.recvErr
	}
	if s.fr == nil {
		if err := s.waitResponse(); err != nil {
			s.recvErr = err
			return nil, err
		}
	}
	res, err := s.fr.ReadResult()
	if err != nil {
		s.recvErr = err
		return nil, err
	}
	return &res, nil
}

// waitResponse parks until the transport delivers response headers,
// then vets status and content type.
func (s *Stream) waitResponse() error {
	select {
	case err := <-s.errc:
		return err
	case resp := <-s.respc:
		s.resp = resp
	case <-s.ctx.Done():
		return s.ctx.Err()
	}
	if s.resp.StatusCode != http.StatusOK {
		defer s.resp.Body.Close()
		var env Envelope
		if err := json.NewDecoder(io.LimitReader(s.resp.Body, 1<<20)).Decode(&env); err != nil || env.Error == nil {
			return fmt.Errorf("client: POST /v2/query: unexpected status %d", s.resp.StatusCode)
		}
		env.Error.HTTPStatus = s.resp.StatusCode
		if env.Error.RetryAfterSeconds == 0 {
			if secs, err := strconv.Atoi(s.resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				env.Error.RetryAfterSeconds = float64(secs)
			}
		}
		return env.Error
	}
	if ct := s.resp.Header.Get("Content-Type"); ct != ContentTypeBinary {
		s.resp.Body.Close()
		return fmt.Errorf("client: stream response is %q, not %q", ct, ContentTypeBinary)
	}
	s.fr = NewFrameReader(s.resp.Body)
	return nil
}

// Close tears the stream down unconditionally and releases its
// transport resources. It is safe after any error and as a deferred
// cleanup alongside the normal CloseSend/Recv-to-EOF shutdown.
func (s *Stream) Close() error {
	s.cancel()
	s.pw.CloseWithError(fmt.Errorf("client: stream closed"))
	if s.sendErr == nil {
		s.sendErr = fmt.Errorf("client: stream closed")
	}
	if s.recvErr == nil {
		s.recvErr = fmt.Errorf("client: stream closed")
	}
	if s.resp != nil {
		io.Copy(io.Discard, io.LimitReader(s.resp.Body, 1<<20))
		return s.resp.Body.Close()
	}
	return nil
}
