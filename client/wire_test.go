package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"privcount"
)

// TestErrorRendering pins the error type's message forms.
func TestErrorRendering(t *testing.T) {
	e := &Error{Code: CodeOverLimit, Message: "too big"}
	if got := e.Error(); got != "over_limit: too big" {
		t.Errorf("Error() = %q", got)
	}
	bare := &Error{Code: CodeNotAdmitted}
	if got := bare.Error(); got != "not_admitted" {
		t.Errorf("bare Error() = %q", got)
	}
}

// TestErrorIsMatchesByCode pins cross-wire matching: a decoded envelope
// matches the sentinel of its code and no other, including through
// wrapping.
func TestErrorIsMatchesByCode(t *testing.T) {
	var decoded Envelope
	if err := json.Unmarshal([]byte(`{"error":{"code":"build_canceled","message":"cut short"}}`), &decoded); err != nil {
		t.Fatal(err)
	}
	err := fmt.Errorf("request failed: %w", decoded.Error)
	if !errors.Is(err, ErrBuildCanceled) {
		t.Error("decoded build_canceled does not match ErrBuildCanceled")
	}
	if errors.Is(err, ErrBuildFailed) || errors.Is(err, ErrSpecInvalid) {
		t.Error("decoded build_canceled matches a foreign sentinel")
	}
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Message != "cut short" {
		t.Errorf("errors.As = %+v", apiErr)
	}
}

// TestLocalErrorClassification pins the taxonomy of client-side
// failures: the facade sentinels map onto wire codes before any
// request is made.
func TestLocalErrorClassification(t *testing.T) {
	cases := []struct {
		in   error
		want error
	}{
		{fmt.Errorf("x: %w", privcount.ErrOverLimit), ErrOverLimit},
		{fmt.Errorf("x: %w", privcount.ErrSpecInvalid), ErrSpecInvalid},
		{fmt.Errorf("x: %w", privcount.ErrNotAdmitted), ErrNotAdmitted},
		{fmt.Errorf("x: %w", privcount.ErrBuildFailed), ErrBuildFailed},
		{errors.New("anything else"), ErrSpecInvalid},
	}
	for _, c := range cases {
		got := localError(c.in)
		if !errors.Is(got, c.want) {
			t.Errorf("localError(%v) = %v, want class %v", c.in, got, c.want)
		}
		var apiErr *Error
		if !errors.As(got, &apiErr) || apiErr.HTTPStatus != 0 {
			t.Errorf("localError(%v) HTTPStatus = %v, want 0", c.in, got)
		}
	}
	// An error already typed passes through untouched.
	typed := &Error{Code: CodeBuildCanceled, Message: "m", HTTPStatus: 503}
	if got := localError(typed); got != typed {
		t.Errorf("localError(typed) = %v, want identity", got)
	}
}

// TestOpConstructors pins the canonical-ID embedding and payload
// wiring of the op helpers.
func TestOpConstructors(t *testing.T) {
	spec := privcount.Spec{Kind: privcount.SpecGeometric, N: 8, Alpha: 0.5}
	if op := SampleOp(spec, 3); op.Op != OpSample || op.ID != "gm:n=8:a=0.5" || op.Count != 3 {
		t.Errorf("SampleOp = %+v", op)
	}
	seed := uint64(9)
	if op := BatchOp(spec, []int{1, 2}, &seed); op.Op != OpBatch || op.Seed == nil || len(op.Counts) != 2 {
		t.Errorf("BatchOp = %+v", op)
	}
	if op := EstimateOp(spec, []int{1}); op.Op != OpEstimate || len(op.Outputs) != 1 {
		t.Errorf("EstimateOp = %+v", op)
	}
}

// TestOpResultAccessors pins the result helpers' nil-safety.
func TestOpResultAccessors(t *testing.T) {
	errRes := OpResult{Error: &Error{Code: CodeSpecInvalid, Message: "bad"}}
	if errRes.Err() == nil || errRes.Estimate() != nil {
		t.Errorf("error result accessors: err=%v est=%v", errRes.Err(), errRes.Estimate())
	}
	out := 3
	if r := (OpResult{Output: &out}); r.Err() != nil || r.Estimate() != nil {
		t.Errorf("sample result accessors misbehave: %+v", r)
	}
	sum, mean, unb := 6.0, 2.0, true
	est := OpResult{MLE: []int{1, 2, 3}, Sum: &sum, Mean: &mean, Unbiased: &unb}
	got := est.Estimate()
	if got == nil || got.Sum != 6 || got.Mean != 2 || !got.Unbiased || len(got.MLE) != 3 {
		t.Errorf("Estimate() = %+v", got)
	}
}

// TestStatusAccessors pins MechanismStatus helpers.
func TestStatusAccessors(t *testing.T) {
	ready := MechanismStatus{State: "ready"}
	if !ready.Ready() || ready.Err() != nil {
		t.Errorf("ready accessors: %v %v", ready.Ready(), ready.Err())
	}
	failed := MechanismStatus{State: "failed", Error: &Error{Code: CodeBuildCanceled}}
	if failed.Ready() || !errors.Is(failed.Err(), ErrBuildCanceled) {
		t.Errorf("failed accessors: %v %v", failed.Ready(), failed.Err())
	}
}

// TestOptionsApply pins the functional options.
func TestOptionsApply(t *testing.T) {
	hc := &http.Client{Timeout: time.Second}
	c, err := New("http://localhost:1", WithHTTPClient(hc), WithPollInterval(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if c.hc != hc {
		t.Error("WithHTTPClient not applied")
	}
	if c.pollInitial != time.Millisecond || c.pollMax != 2*time.Millisecond {
		t.Error("WithPollInterval not applied")
	}
	// Nothing listens on port 1: transport errors surface as plain
	// errors, not envelopes.
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := c.List(ctx); err == nil {
		t.Error("List against a dead server succeeded")
	}
}
