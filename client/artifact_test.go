package client_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"privcount"
	"privcount/client"
	"privcount/internal/service"
)

// TestArtifactLocalSpecValidation: both artifact calls validate the
// spec locally before touching the network, mirroring Create.
func TestArtifactLocalSpecValidation(t *testing.T) {
	c, err := client.New("http://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bad := privcount.Spec{Kind: privcount.SpecGeometric, N: -3, Alpha: 0.5}
	if _, err := c.ExportArtifact(context.Background(), bad); err == nil {
		t.Error("ExportArtifact accepted an invalid spec")
	}
	if _, err := c.ImportArtifact(context.Background(), bad, []byte("x")); err == nil {
		t.Error("ImportArtifact accepted an invalid spec")
	}
}

// TestArtifactTransportFailures pins the SDK's behavior against
// misbehaving servers: non-envelope error bodies still produce a typed
// error with the HTTP status, and a 2xx import response that is not a
// status document fails loudly instead of returning garbage.
func TestArtifactTransportFailures(t *testing.T) {
	spec := privcount.Spec{Kind: privcount.SpecUniform, N: 4}
	ctx := context.Background()

	t.Run("non-envelope error body", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "gateway exploded", http.StatusBadGateway)
		}))
		defer ts.Close()
		c, err := client.New(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.ExportArtifact(ctx, spec)
		if err == nil {
			t.Fatal("ExportArtifact succeeded against a 502 server")
		}
		if !strings.Contains(err.Error(), "502") {
			t.Fatalf("got %v, want the 502 status surfaced", err)
		}
		if _, err := c.ImportArtifact(ctx, spec, []byte("x")); err == nil {
			t.Fatal("ImportArtifact succeeded against a 502 server")
		}
	})

	t.Run("import response is not a status document", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("certainly not json"))
		}))
		defer ts.Close()
		c, err := client.New(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.ImportArtifact(ctx, spec, []byte("x"))
		if err == nil || !strings.Contains(err.Error(), "decoding") {
			t.Fatalf("got %v, want a decode error", err)
		}
	})

	t.Run("connection refused", func(t *testing.T) {
		c, err := client.New("http://127.0.0.1:1")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.ExportArtifact(ctx, spec); err == nil {
			t.Error("ExportArtifact succeeded against a closed port")
		}
		if _, err := c.ImportArtifact(ctx, spec, nil); err == nil {
			t.Error("ImportArtifact succeeded against a closed port")
		}
	})
}

// TestArtifactExportImportSDKRoundTrip exercises the happy path purely
// at the SDK level (the httpapi package pins the wire details): export
// from a warm server, import into a cold one, query both.
func TestArtifactExportImportSDKRoundTrip(t *testing.T) {
	spec := privcount.Spec{Kind: privcount.SpecGeometric, N: 12, Alpha: 0.5}
	ctx := context.Background()

	warm, _ := newTestClient(t, service.Config{Seed: 1})
	if _, err := warm.Create(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if _, err := warm.WaitReady(ctx, spec); err != nil {
		t.Fatal(err)
	}
	art, err := warm.ExportArtifact(ctx, spec)
	if err != nil {
		t.Fatalf("ExportArtifact: %v", err)
	}

	cold, coldSvc := newTestClient(t, service.Config{Seed: 2})
	st, err := cold.ImportArtifact(ctx, spec, art)
	if err != nil {
		t.Fatalf("ImportArtifact: %v", err)
	}
	if st.State != "ready" {
		t.Fatalf("imported state = %q, want ready", st.State)
	}
	if got := coldSvc.Stats().Builds; got != 0 {
		t.Fatalf("import ran %d builds, want 0", got)
	}
	res, err := cold.Query(ctx, []client.Op{client.SampleOp(spec, 3)})
	if err != nil || len(res) != 1 || res[0].Err() != nil {
		t.Fatalf("Query after import: %v / %+v", err, res)
	}
}
