package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"testing"
)

func u64ptr(v uint64) *uint64 { return &v }

// opLattice enumerates the op shapes the protocol admits: every
// opcode, with and without seeds, empty and non-empty vectors, empty
// and long IDs.
func opLattice() []Op {
	long := make([]int, 300)
	for i := range long {
		long[i] = i % 65
	}
	return []Op{
		{Op: OpSample, ID: "gm:n=8:a=0.5", Count: 0},
		{Op: OpSample, ID: "um:n=32", Count: 31},
		{Op: OpSample, ID: "", Count: 7},
		{Op: OpBatch, ID: "gm:n=64:a=0.5", Counts: []int{0, 64, 3}},
		{Op: OpBatch, ID: "em:n=16:a=0.5", Counts: []int{5}, Seed: u64ptr(0)},
		{Op: OpBatch, ID: "em:n=16:a=0.5", Counts: long, Seed: u64ptr(^uint64(0))},
		{Op: OpBatch, ID: "choose:n=32:a=0.5:WH+CM:p=0", Counts: nil},
		{Op: OpBatch, ID: "x", Counts: nil, Seed: u64ptr(42)},
		{Op: OpEstimate, ID: "gm:n=8:a=0.5", Outputs: []int{1, 2, 3, 8}},
		{Op: OpEstimate, ID: "um:n=32", Outputs: nil},
	}
}

func resultLattice() []OpResult {
	out := 5
	sum, mean := 12.25, 4.0833333333333
	tru, fls := true, false
	return []OpResult{
		{Output: &out},
		{Outputs: []int{0, 1, 2, 64}},
		{Outputs: nil},
		{MLE: []int{3, 3, 3}, Sum: &sum, Mean: &mean, Unbiased: &tru},
		{MLE: nil, Sum: &sum, Mean: &mean, Unbiased: &fls},
		{Error: &Error{Code: CodeOverLimit, Message: "shed", RetryAfterSeconds: 1.5}},
		{Error: &Error{Code: CodeSpecInvalid, Message: ""}},
	}
}

// jsonNorm round-trips v through the JSON codec, the normal form both
// transports must agree on (omitempty collapses empty vectors to nil).
func jsonNorm(t *testing.T, v, into any) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, into); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryOpRoundTripMatchesJSON(t *testing.T) {
	for _, op := range opLattice() {
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf)
		if err := fw.WriteOp(&op); err != nil {
			t.Fatalf("%+v: encode: %v", op, err)
		}
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
		fr := NewFrameReader(&buf)
		got, err := fr.ReadOp()
		if err != nil {
			t.Fatalf("%+v: decode: %v", op, err)
		}
		var want Op
		jsonNorm(t, op, &want)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("binary round trip diverged from JSON normal form:\n got %+v\nwant %+v", got, want)
		}
		if _, err := fr.ReadOp(); err != io.EOF {
			t.Fatalf("after last frame: err = %v, want io.EOF", err)
		}
	}
}

func TestBinaryResultRoundTripMatchesJSON(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	results := resultLattice()
	for i := range results {
		if err := fw.WriteResult(&results[i]); err != nil {
			t.Fatalf("%+v: encode: %v", results[i], err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	for i := range results {
		got, err := fr.ReadResult()
		if err != nil {
			t.Fatalf("result %d: decode: %v", i, err)
		}
		var want OpResult
		jsonNorm(t, results[i], &want)
		want.Error = nil
		if results[i].Error != nil {
			// HTTPStatus is json:"-" so jsonNorm drops it; compare the
			// wire-visible fields directly.
			want.Error = &Error{
				Code:              results[i].Error.Code,
				Message:           results[i].Error.Message,
				RetryAfterSeconds: results[i].Error.RetryAfterSeconds,
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("result %d diverged from JSON normal form:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := fr.ReadResult(); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestBinaryAbortSurfacesAsTypedError(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	out := 3
	if err := fw.WriteResult(&OpResult{Output: &out}); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteAbort(&Error{Code: CodeOverLimit, Message: "drain", RetryAfterSeconds: 2}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	if _, err := fr.ReadResult(); err != nil {
		t.Fatal(err)
	}
	_, err := fr.ReadResult()
	if !errors.Is(err, ErrOverLimit) {
		t.Fatalf("abort error = %v, want over_limit", err)
	}
	if !IsRetryable(err) {
		t.Error("abort with Retry-After advice should be retryable")
	}
}

func TestBinaryTruncationIsNotEOF(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	op := Op{Op: OpBatch, ID: "gm:n=8:a=0.5", Counts: []int{1, 2, 3}}
	if err := fw.WriteOp(&op); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix that drops the end marker (and possibly more)
	// must decode to ErrUnexpectedEOF, never a clean io.EOF.
	for cut := 0; cut < len(full)-1; cut++ {
		fr := NewFrameReader(bytes.NewReader(full[:cut]))
		var err error
		for err == nil {
			_, err = fr.ReadOp()
		}
		if err == io.EOF {
			t.Fatalf("prefix of %d/%d bytes decoded as clean EOF", cut, len(full))
		}
	}
}

func TestBinaryRejectsOversizedAndMalformed(t *testing.T) {
	// Oversized declared frame length must be refused before allocating.
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // uvarint ≫ MaxFrameBytes
	fr := NewFrameReader(&buf)
	if _, err := fr.ReadOp(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("oversized frame: err = %v", err)
	}

	// Bad magic.
	fr = NewFrameReader(bytes.NewReader([]byte("NOPE\x00")))
	if _, err := fr.ReadOp(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("bad magic: err = %v", err)
	}

	// Trailing garbage inside a frame payload.
	var tr bytes.Buffer
	fw := NewFrameWriter(&tr)
	if err := fw.WriteOp(&Op{Op: OpSample, ID: "x", Count: 1}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	raw := tr.Bytes()
	// Splice one extra byte into the frame: bump the length prefix and
	// append a byte to the payload.
	idx := len(binaryMagic)
	mut := append([]byte{}, raw[:idx]...)
	mut = append(mut, raw[idx]+1)
	mut = append(mut, raw[idx+1:len(raw)-1]...)
	mut = append(mut, 0xAA, 0x00)
	fr = NewFrameReader(bytes.NewReader(mut))
	if _, err := fr.ReadOp(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("trailing payload bytes: err = %v", err)
	}

	// Negative counts are not encodable.
	fw = NewFrameWriter(io.Discard)
	if err := fw.WriteOp(&Op{Op: OpSample, ID: "x", Count: -1}); err == nil {
		t.Error("negative count encoded")
	}
	if err := fw.WriteOp(&Op{Op: "nope", ID: "x"}); err == nil {
		t.Error("unknown op encoded")
	}
}

func TestBinaryReadOpIntoReusesCapacity(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	for i := 0; i < 64; i++ {
		if err := fw.WriteOp(&Op{Op: OpBatch, ID: "gm:n=8:a=0.5", Counts: []int{1, 2, 3, 4, 5, 6, 7, 8}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	var op Op
	// Warm the scratch, then the remaining decodes must not allocate
	// vectors (the seed pointer is per-op and absent here).
	if err := fr.ReadOpInto(&op); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(50, func() {
		if err := fr.ReadOpInto(&op); err != nil {
			t.Fatal(err)
		}
	})
	// string(ID) is one allocation per op; the count vector must reuse.
	if n > 1 {
		t.Errorf("ReadOpInto allocated %.1f times per op, want ≤ 1", n)
	}
}

// FuzzBinaryOpStream hammers the frame reader with arbitrary bytes: it
// must never panic or over-allocate, and any stream that decodes
// cleanly must re-encode to a stream that decodes to the same ops.
func FuzzBinaryOpStream(f *testing.F) {
	seed := func(ops ...Op) []byte {
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf)
		for i := range ops {
			if err := fw.WriteOp(&ops[i]); err != nil {
				f.Fatal(err)
			}
		}
		if err := fw.Close(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed())
	f.Add(seed(opLattice()...))
	f.Add(seed(Op{Op: OpSample, ID: "gm:n=8:a=0.5", Count: 3}))
	f.Add([]byte("PCB1"))
	f.Add([]byte("PCB1\x00"))
	f.Add([]byte("PCB1\xFF\xFF\xFF\xFF\x7F"))
	f.Add([]byte("JSON{}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		var ops []Op
		for {
			op, err := fr.ReadOp()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // malformed input is fine, panics are not
			}
			ops = append(ops, op)
		}
		// Clean decode: re-encode and decode again, expecting identity.
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf)
		for i := range ops {
			if err := fw.WriteOp(&ops[i]); err != nil {
				t.Fatalf("re-encode of decoded op %+v: %v", ops[i], err)
			}
		}
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
		fr = NewFrameReader(&buf)
		for i := range ops {
			got, err := fr.ReadOp()
			if err != nil {
				t.Fatalf("second decode of op %d: %v", i, err)
			}
			if !reflect.DeepEqual(got, ops[i]) {
				t.Fatalf("op %d not stable under re-encode:\n got %+v\nwas %+v", i, got, ops[i])
			}
		}
	})
}
