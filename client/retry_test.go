package client

import (
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// TestIsRetryable pins the SDK's retry classification: cut-short builds
// and transient load-shed over_limit errors (503 or explicit advice)
// are retryable; static refusals and every other code are not.
func TestIsRetryable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"not an api error", errors.New("dial tcp: refused"), false},
		{"build canceled", &Error{Code: CodeBuildCanceled}, true},
		{"wrapped build canceled", fmt.Errorf("op 3: %w", &Error{Code: CodeBuildCanceled}), true},
		{"build failed", &Error{Code: CodeBuildFailed, HTTPStatus: 422}, false},
		{"spec invalid", &Error{Code: CodeSpecInvalid, HTTPStatus: 400}, false},
		{"not admitted", &Error{Code: CodeNotAdmitted, HTTPStatus: 404}, false},
		{"static over limit (400, no advice)", &Error{Code: CodeOverLimit, HTTPStatus: 400}, false},
		{"shed over limit by status", &Error{Code: CodeOverLimit, HTTPStatus: http.StatusServiceUnavailable}, true},
		{"shed over limit by advice (per-op, no status)", &Error{Code: CodeOverLimit, RetryAfterSeconds: 1.5}, true},
	}
	for _, tc := range cases {
		if got := IsRetryable(tc.err); got != tc.want {
			t.Errorf("%s: IsRetryable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRetryAfter pins the advice accessor's unit conversion.
func TestRetryAfter(t *testing.T) {
	if d := (&Error{}).RetryAfter(); d != 0 {
		t.Errorf("no advice: RetryAfter = %v, want 0", d)
	}
	if d := (&Error{RetryAfterSeconds: 2.5}).RetryAfter(); d != 2500*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 2.5s", d)
	}
}
