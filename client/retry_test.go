package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"privcount"
)

// TestIsRetryable pins the SDK's retry classification across the whole
// taxonomy: cut-short builds, in-flight not_ready conflicts, and
// transient load-shed over_limit errors (503 or explicit advice) are
// retryable; static refusals and every other code are not.
func TestIsRetryable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"not an api error", errors.New("dial tcp: refused"), false},
		{"build canceled", &Error{Code: CodeBuildCanceled}, true},
		{"wrapped build canceled", fmt.Errorf("op 3: %w", &Error{Code: CodeBuildCanceled}), true},
		{"build failed", &Error{Code: CodeBuildFailed, HTTPStatus: 422}, false},
		{"spec invalid", &Error{Code: CodeSpecInvalid, HTTPStatus: 400}, false},
		{"not admitted", &Error{Code: CodeNotAdmitted, HTTPStatus: 404}, false},
		{"static over limit (400, no advice)", &Error{Code: CodeOverLimit, HTTPStatus: 400}, false},
		{"shed over limit by status", &Error{Code: CodeOverLimit, HTTPStatus: http.StatusServiceUnavailable}, true},
		{"shed over limit by advice (per-op, no status)", &Error{Code: CodeOverLimit, RetryAfterSeconds: 1.5}, true},
		// The artifact-era codes: not_ready is polling state (the same
		// call succeeds once the in-flight build settles), while gone
		// (retired API surface) and artifact_invalid (a payload that will
		// re-fail verification byte-for-byte) fail identically every time.
		{"not ready (409)", &Error{Code: CodeNotReady, HTTPStatus: http.StatusConflict}, true},
		{"wrapped not ready", fmt.Errorf("export: %w", &Error{Code: CodeNotReady, HTTPStatus: 409}), true},
		{"gone (410)", &Error{Code: CodeGone, HTTPStatus: http.StatusGone}, false},
		{"artifact invalid (422)", &Error{Code: CodeArtifactInvalid, HTTPStatus: 422}, false},
		{"unsupported media (415)", &Error{Code: CodeUnsupportedMedia, HTTPStatus: 415}, false},
	}
	for _, tc := range cases {
		if got := IsRetryable(tc.err); got != tc.want {
			t.Errorf("%s: IsRetryable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRetryAfter pins the advice accessor's unit conversion.
func TestRetryAfter(t *testing.T) {
	if d := (&Error{}).RetryAfter(); d != 0 {
		t.Errorf("no advice: RetryAfter = %v, want 0", d)
	}
	if d := (&Error{RetryAfterSeconds: 2.5}).RetryAfter(); d != 2500*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 2.5s", d)
	}
}

// flakyServer answers the first fail requests with the given envelope
// and status, then delegates to ok. It counts total requests.
func flakyServer(t *testing.T, fail int, status int, e *Error, ok http.HandlerFunc) (*Client, *int64) {
	t.Helper()
	var hits int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := atomic.AddInt64(&hits, 1)
		if int(n) <= fail {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(Envelope{Error: e})
			return
		}
		ok(w, r)
	}))
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	return c, &hits
}

func okList(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(MechanismList{})
}

// TestRetryRequestLevel pins that WithRetry re-sends load-shed
// requests and succeeds once the server recovers.
func TestRetryRequestLevel(t *testing.T) {
	c, hits := flakyServer(t, 2, http.StatusServiceUnavailable,
		&Error{Code: CodeOverLimit, Message: "shed"}, okList)
	if _, err := c.List(context.Background()); err != nil {
		t.Fatalf("List after recovery: %v", err)
	}
	if *hits != 3 {
		t.Errorf("request count %d, want 3 (2 shed + 1 ok)", *hits)
	}
}

// TestRetryExhausted pins that a persistently shedding server yields
// the last typed error after exactly MaxAttempts round trips.
func TestRetryExhausted(t *testing.T) {
	c, hits := flakyServer(t, 1<<30, http.StatusServiceUnavailable,
		&Error{Code: CodeOverLimit, Message: "shed"}, okList)
	_, err := c.List(context.Background())
	if !errors.Is(err, ErrOverLimit) {
		t.Fatalf("err = %v, want over_limit", err)
	}
	if *hits != 4 {
		t.Errorf("request count %d, want MaxAttempts=4", *hits)
	}
}

// TestRetryNonRetryableIsImmediate pins that deterministic failures are
// not re-sent.
func TestRetryNonRetryableIsImmediate(t *testing.T) {
	c, hits := flakyServer(t, 1<<30, http.StatusBadRequest,
		&Error{Code: CodeSpecInvalid, Message: "bad"}, okList)
	_, err := c.List(context.Background())
	if !errors.Is(err, ErrSpecInvalid) {
		t.Fatalf("err = %v, want spec_invalid", err)
	}
	if *hits != 1 {
		t.Errorf("request count %d, want 1", *hits)
	}
}

// TestRetryHonorsContext pins that a dead context cuts the backoff
// sleep short and surfaces the last server error promptly.
func TestRetryHonorsContext(t *testing.T) {
	// Huge advice would otherwise park the retry loop for a minute.
	c, hits := flakyServer(t, 1<<30, http.StatusServiceUnavailable,
		&Error{Code: CodeOverLimit, Message: "shed", RetryAfterSeconds: 60}, okList)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.List(ctx)
	if !errors.Is(err, ErrOverLimit) {
		t.Fatalf("err = %v, want the last server error", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop ignored context for %v", elapsed)
	}
	if *hits != 1 {
		t.Errorf("request count %d, want 1 (context died during first backoff)", *hits)
	}
}

// TestRetryPerOp pins that the single-op helpers retry a retryable
// per-op error arriving inside a 200 response.
func TestRetryPerOp(t *testing.T) {
	var hits int64
	out := 9
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := atomic.AddInt64(&hits, 1)
		w.Header().Set("Content-Type", "application/json")
		res := OpResult{Output: &out}
		if n == 1 {
			res = OpResult{Error: &Error{Code: CodeBuildCanceled, Message: "evicted mid-build"}}
		}
		json.NewEncoder(w).Encode(QueryResponse{Results: []OpResult{res}})
	}))
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Sample(context.Background(), privcount.Spec{Kind: privcount.SpecGeometric, N: 8, Alpha: 0.5}, 3)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if got != out {
		t.Errorf("Sample = %d, want %d", got, out)
	}
	if hits != 2 {
		t.Errorf("request count %d, want 2", hits)
	}
}

// TestRetryDisabledByDefault pins the zero-config behaviour: one
// attempt, even for retryable errors.
func TestRetryDisabledByDefault(t *testing.T) {
	var hits int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(&hits, 1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(Envelope{Error: &Error{Code: CodeOverLimit}})
	}))
	t.Cleanup(ts.Close)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.List(context.Background()); !errors.Is(err, ErrOverLimit) {
		t.Fatalf("err = %v", err)
	}
	if hits != 1 {
		t.Errorf("request count %d, want 1", hits)
	}
}

// TestBackoffEnvelope pins the backoff shape: capped exponential with
// equal jitter, floored at explicit server advice.
func TestBackoffEnvelope(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}.withDefaults()
	for attempt := 1; attempt <= 12; attempt++ {
		full := p.BaseDelay << (attempt - 1)
		if full > p.MaxDelay || full <= 0 {
			full = p.MaxDelay
		}
		for i := 0; i < 50; i++ {
			d := p.backoff(attempt, errors.New("x"))
			if d < full/2 || d > full {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, full/2, full)
			}
		}
	}
	// Server advice dominates a smaller computed backoff.
	adv := &Error{Code: CodeOverLimit, RetryAfterSeconds: 1}
	if d := p.backoff(1, adv); d != time.Second {
		t.Errorf("advised backoff %v, want 1s", d)
	}
}
