package client

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// RetryPolicy configures automatic retries of retryable failures (see
// IsRetryable): transient load-shed admissions and cut-short builds.
// The zero value disables retries, which is the Client default.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first;
	// 0 and 1 both mean "no retries".
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt k (counting
	// retries from 1) backs off around BaseDelay·2^(k-1). Defaults to
	// 100ms when MaxAttempts enables retrying.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Defaults to 5s.
	MaxDelay time.Duration
}

// WithRetry makes the Client retry retryable failures — request-level
// errors in every call, and per-op errors in the single-op helpers
// (Sample, SampleBatch, Estimate) — up to p.MaxAttempts attempts with
// capped exponential backoff and equal jitter. When the server sent
// explicit Retry-After advice the wait is at least that long. Waits end
// early when the call's context dies; the last server error is returned
// either way. Query and QueryStream never retry per-op errors: batch
// callers see them positionally and decide per op.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p.withDefaults() }
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts > 1 {
		if p.BaseDelay <= 0 {
			p.BaseDelay = 100 * time.Millisecond
		}
		if p.MaxDelay <= 0 {
			p.MaxDelay = 5 * time.Second
		}
	}
	return p
}

// backoff returns the wait before the attempt-th retry (attempt ≥ 1):
// the capped exponential with equal jitter — half deterministic, half
// uniform — so synchronized clients spread out, floored at the server's
// explicit advice when err carries any.
func (p RetryPolicy) backoff(attempt int, err error) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 { // <= 0 catches shift overflow
		d = p.MaxDelay
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	var e *Error
	if errors.As(err, &e) {
		if adv := e.RetryAfter(); adv > d {
			d = adv
		}
	}
	return d
}

// sleep waits out the backoff for attempt, returning early with false
// when ctx dies first.
func (p RetryPolicy) sleep(ctx context.Context, attempt int, err error) bool {
	timer := time.NewTimer(p.backoff(attempt, err))
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}

// retrying runs attempt() under the policy: it returns the first
// success, the first non-retryable error, or — after MaxAttempts tries
// or a dead context — the last retryable error.
func (p RetryPolicy) retrying(ctx context.Context, attempt func() error) error {
	for try := 1; ; try++ {
		err := attempt()
		if err == nil || try >= p.MaxAttempts || !IsRetryable(err) {
			return err
		}
		if !p.sleep(ctx, try, err) {
			return err
		}
	}
}
