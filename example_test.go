package privcount_test

import (
	"fmt"
	"math"

	"privcount"
)

// Example builds the explicit fair mechanism for a small group, verifies
// its guarantee, and releases a noisy count.
func Example() {
	em, err := privcount.NewExplicitFair(8, 0.9)
	if err != nil {
		panic(err)
	}
	fmt.Printf("0.9-DP: %v\n", em.SatisfiesDP(0.9, 0))
	fmt.Printf("L0 score: %.4f (GM: %.4f, UM: 1)\n", em.L0(), privcount.GeometricL0(0.9))

	sampler, err := privcount.NewSampler(em)
	if err != nil {
		panic(err)
	}
	src := privcount.NewRand(42)
	fmt.Printf("true count 5 -> releases: %d %d %d\n",
		sampler.Sample(src, 5), sampler.Sample(src, 5), sampler.Sample(src, 5))
	// Output:
	// 0.9-DP: true
	// L0 score: 0.9685 (GM: 0.9474, UM: 1)
	// true count 5 -> releases: 4 6 7
}

// ExampleChoose walks the paper's Figure 5 decision procedure.
func ExampleChoose() {
	choice, err := privcount.Choose(6, 0.9, privcount.Fairness)
	if err != nil {
		panic(err)
	}
	fmt.Println(choice.Mechanism.Name(), "-", choice.Rule)
	// Output:
	// EM - fairness => EM
}

// ExampleDesign finds the optimal mechanism for a custom property set.
func ExampleDesign() {
	r, err := privcount.Design(privcount.DesignProblem{
		N: 6, Alpha: 0.9,
		Props:          privcount.WeakHonesty | privcount.Symmetry,
		ReduceSymmetry: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimal L0 under WH: %.6f\n", r.Mechanism.L0())
	fmt.Printf("weakly honest: %v\n", r.Mechanism.Check(privcount.WeakHonesty, 1e-7))
	// Output:
	// optimal L0 under WH: 0.963355
	// weakly honest: true
}

// ExampleMechanism_UnbiasedEstimator debiases noisy counts for aggregate
// statistics.
func ExampleMechanism_UnbiasedEstimator() {
	gm, err := privcount.NewGeometric(4, 0.5)
	if err != nil {
		panic(err)
	}
	est, err := gm.UnbiasedEstimator()
	if err != nil {
		panic(err)
	}
	// E[est[output] | input=j] = j for every true count j.
	for j := 0; j <= 4; j++ {
		var e float64
		for i := 0; i <= 4; i++ {
			e += gm.Prob(i, j) * est[i]
		}
		fmt.Printf("input %d -> expected estimate %.2f\n", j, math.Abs(e))
	}
	// Output:
	// input 0 -> expected estimate 0.00
	// input 1 -> expected estimate 1.00
	// input 2 -> expected estimate 2.00
	// input 3 -> expected estimate 3.00
	// input 4 -> expected estimate 4.00
}
