package privcount

// This file is the benchmark harness required by DESIGN.md: one benchmark
// per table and figure of the paper, each regenerating the artefact's
// data series through internal/figures, plus micro-benchmarks for the
// performance-critical kernels (mechanism construction, sampling, and LP
// solving).
//
// By default figures are built with trimmed sweeps (the Quick option) so
// `go test -bench=. -benchmem` completes in minutes while preserving
// every curve's shape. Set PRIVCOUNT_FULL=1 to run the paper's full
// parameter grids, as used to produce EXPERIMENTS.md:
//
//	PRIVCOUNT_FULL=1 go test -bench=BenchmarkFigure9 -benchtime=1x

import (
	"os"
	"testing"

	"privcount/internal/core"
	"privcount/internal/dataset"
	"privcount/internal/design"
	"privcount/internal/figures"
	"privcount/internal/rng"
)

func figureOptions() figures.Options {
	return figures.Options{Quick: os.Getenv("PRIVCOUNT_FULL") == "", Seed: 1}
}

// benchFigure rebuilds one figure per iteration and fails the benchmark
// on any reproduction error.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	opts := figureOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := figures.Build(id, opts); err != nil {
			b.Fatalf("figure %s: %v", id, err)
		}
	}
}

// --- Paper figures and tables -------------------------------------------

func BenchmarkFigure1(b *testing.B)  { benchFigure(b, "fig1") }
func BenchmarkFigure2(b *testing.B)  { benchFigure(b, "fig2") }
func BenchmarkFigure3(b *testing.B)  { benchFigure(b, "fig3") }
func BenchmarkFigure4(b *testing.B)  { benchFigure(b, "fig4") }
func BenchmarkFigure5(b *testing.B)  { benchFigure(b, "fig5") }
func BenchmarkFigure6(b *testing.B)  { benchFigure(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchFigure(b, "fig7") }
func BenchmarkFigure8a(b *testing.B) { benchFigure(b, "fig8a") }
func BenchmarkFigure8b(b *testing.B) { benchFigure(b, "fig8b") }
func BenchmarkFigure9(b *testing.B)  { benchFigure(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchFigure(b, "fig10") }
func BenchmarkFigure11(b *testing.B) { benchFigure(b, "fig11") }
func BenchmarkFigure12(b *testing.B) { benchFigure(b, "fig12") }
func BenchmarkFigure13(b *testing.B) { benchFigure(b, "fig13") }

// --- Worked examples and analytical results ------------------------------

func BenchmarkExample1(b *testing.B)       { benchFigure(b, "ex1") }
func BenchmarkTheorem1(b *testing.B)       { benchFigure(b, "thm1") }
func BenchmarkTheorem3(b *testing.B)       { benchFigure(b, "thm3") }
func BenchmarkTheorem4(b *testing.B)       { benchFigure(b, "thm4") }
func BenchmarkLemmas23(b *testing.B)       { benchFigure(b, "lem23") }
func BenchmarkLemma4(b *testing.B)         { benchFigure(b, "lem4") }
func BenchmarkSubsetCollapse(b *testing.B) { benchFigure(b, "subsets") }
func BenchmarkGSTest(b *testing.B)         { benchFigure(b, "gs") }

// --- Extensions / ablations ----------------------------------------------

func BenchmarkAblationOutputDP(b *testing.B) { benchFigure(b, "odp") }
func BenchmarkAblationL1L2(b *testing.B)     { benchFigure(b, "l1l2") }
func BenchmarkOffTheShelf(b *testing.B)      { benchFigure(b, "offtheshelf") }
func BenchmarkEstimators(b *testing.B)       { benchFigure(b, "estimators") }
func BenchmarkMinimax(b *testing.B)          { benchFigure(b, "minimax") }
func BenchmarkComposition(b *testing.B)      { benchFigure(b, "composition") }

// --- Micro-benchmarks on the kernels --------------------------------------

func BenchmarkGeometricConstruct(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Geometric(16, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExplicitFairConstruct(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExplicitFair(16, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSamplerBuild(b *testing.B) {
	m, err := core.ExplicitFair(16, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewSampler(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSamplerSample(b *testing.B) {
	m, err := core.ExplicitFair(16, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.NewSampler(m)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(src, i%17)
	}
}

func BenchmarkTwoSidedGeometric(b *testing.B) {
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng.TwoSidedGeometric(src, 0.9)
	}
}

func BenchmarkBinomialGroups(b *testing.B) {
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.BinomialGroups(10000, 8, 0.3, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDesignUnconstrained(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := design.Solve(design.Problem{N: 8, Alpha: 0.9}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDesignWMCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		design.ClearCache()
		if _, err := design.WM(8, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDesignWMReduced(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := design.Solve(design.Problem{
			N: 12, Alpha: 0.9, Props: design.WMProps, ReduceSymmetry: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDesignWMFull(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := design.Solve(design.Problem{
			N: 12, Alpha: 0.9, Props: design.WMProps,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignChooseN64 measures a cold Figure 5 decision at n=64
// down the WM LP path. At ~3 s/op it runs a single iteration under CI's
// -benchtime 0.5s, so benchjson publishes it in BENCH_lp.json for
// observability but skips it in the regression gate (too few samples);
// the enforced guard for this path is TestChooseN64UnderBudget's 10 s
// wall-clock ceiling, with BenchmarkDesignChooseN24 as the gated proxy.
func BenchmarkDesignChooseN64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		design.ClearCache()
		if _, err := design.Choose(64, 0.9, core.ColumnMonotone); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignChooseN256 measures the serving-scale cold build the
// raised service.MaxLPN admits: the WM LP at n=256 through the bounded
// simplex with presolve and the geometric-vertex crash basis (~6 s/op).
// Like N64 it yields a single iteration under CI's -benchtime, so it is
// published in BENCH_lp.json but not regression-gated; the enforced
// guard is TestWMDesignN256UnderBudget's 10 s wall-clock ceiling.
func BenchmarkDesignChooseN256(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		design.ClearCache()
		if _, err := design.Choose(256, 0.9, core.ColumnMonotone); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignChooseN1024 measures the largest cold build the raised
// service.MaxLPN admits: the WM LP at n=1024 through the band-reduced
// path (interior fixed to the geometric mechanism, O(d·n)-variable
// boundary LP; ~3 s/op). Like N64 and N256 it yields a single iteration
// under CI's -benchtime, so it is published in BENCH_lp.json but not
// regression-gated; the enforced guard is TestWMDesignN1024UnderBudget's
// self-calibrating 10 s wall-clock ceiling.
func BenchmarkDesignChooseN1024(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		design.ClearCache()
		if _, err := design.Choose(1024, 0.9, core.ColumnMonotone); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignChooseN24 is the gated CI proxy for LP-path scaling: a
// cold WM LP at n=24 (the old dense limit) is fast enough to collect
// several samples per run, so the 30% regression gate applies to it.
func BenchmarkDesignChooseN24(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		design.ClearCache()
		if _, err := design.Choose(24, 0.9, core.ColumnMonotone); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignAlphaSweepWarm measures an α-sweep at n=16 with the
// warm-basis reuse that internal/figures leans on: after the first
// solve, each step starts from the previous optimal basis.
func BenchmarkDesignAlphaSweepWarm(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		design.ClearCache()
		for _, alpha := range []float64{0.60, 0.62, 0.64, 0.66, 0.68, 0.70} {
			if _, err := design.Solve(design.Problem{
				N: 16, Alpha: alpha, Props: design.WMProps, ReduceSymmetry: true,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkGenerateAdult(b *testing.B) {
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dataset.GenerateAdult(1000, src)
	}
}

func BenchmarkExperimentRun(b *testing.B) {
	m, err := core.ExplicitFair(8, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	groups, err := dataset.BinomialGroups(10000, 8, 0.4, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	sampler, err := core.NewSampler(m)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(2)
	out := make([]int, 0, len(groups.Counts))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = sampler.SampleMany(src, groups.Counts, out[:0])
	}
}
