package privcount

import (
	"io"

	"privcount/internal/dataset"
	"privcount/internal/experiment"
	"privcount/internal/heatmap"
)

// This file exposes the workload and measurement layers of the library:
// group-count datasets (synthetic Binomial populations and the Adult
// census workload of §V), the repetition-based experiment harness, and
// heatmap rendering.

// Groups holds per-group true counts of a sensitive bit, the input to
// every experiment.
type Groups = dataset.Groups

// BinomialGroups generates the paper's synthetic workload (§V-C): a
// population of individuals whose bit is 1 with probability p, split
// into groups of size n.
func BinomialGroups(population, n int, p float64, src Source) (Groups, error) {
	return dataset.BinomialGroups(population, n, p, src)
}

// GroupBits partitions a bit-population into consecutive groups of size
// n and counts the set bits in each.
func GroupBits(bits []bool, n int) (Groups, error) {
	return dataset.GroupBits(bits, n)
}

// AdultRecord is one row of the (real or synthetic) Adult census
// dataset used by the paper's §V-B experiments.
type AdultRecord = dataset.AdultRecord

// AdultTarget selects one of the paper's three sensitive attributes
// (young, gender, income).
type AdultTarget = dataset.Target

// The Figure 10 target attributes.
const (
	// TargetIncome is true for income >50K.
	TargetIncome = dataset.TargetIncome
	// TargetGender is true for male.
	TargetGender = dataset.TargetGender
	// TargetYoung is true for age under 30.
	TargetYoung = dataset.TargetYoung
)

// GenerateAdult produces synthetic Adult-like records calibrated to the
// published marginals (see DESIGN.md for the substitution rationale).
func GenerateAdult(rows int, src Source) []AdultRecord {
	return dataset.GenerateAdult(rows, src)
}

// LoadAdultCSV parses records in the UCI `adult.data` format, for
// running the §V-B experiments against the genuine dataset.
func LoadAdultCSV(r io.Reader) ([]AdultRecord, error) {
	return dataset.LoadAdultCSV(r)
}

// AdultGroups projects records onto one target attribute and groups
// them, yielding the Figure 10 workload.
func AdultGroups(records []AdultRecord, t AdultTarget, n int) (Groups, error) {
	return dataset.AdultGroups(records, t, n)
}

// Stat is a mean with dispersion across experiment repetitions.
type Stat = experiment.Stat

// Metric reduces (truths, outputs) pairs from one repetition to a single
// number.
type Metric = experiment.Metric

// WrongRate is the empirical L0 metric: the fraction of groups whose
// noisy count differs from the truth (Figure 10).
func WrongRate(truths, outputs []int) float64 {
	return experiment.WrongRate(truths, outputs)
}

// TailRate returns the fraction of groups whose output is more than d
// steps from the truth (Figures 11 and 12).
func TailRate(d int) Metric { return experiment.TailRate(d) }

// EmpiricalRMSE is the root-mean-square error of noisy counts against
// truths (Figure 13).
func EmpiricalRMSE(truths, outputs []int) float64 {
	return experiment.RMSE(truths, outputs)
}

// RunExperiment samples every group `reps` times through the mechanism
// and summarises the metric with error bars; `seed` makes runs
// reproducible.
func RunExperiment(m *Mechanism, groups Groups, metric Metric, reps int, seed uint64) (Stat, error) {
	return experiment.Run(m, groups, metric, reps, seed)
}

// RunExperimentParallel is RunExperiment with repetitions spread over
// `workers` goroutines (0 = GOMAXPROCS). Results are bit-identical to
// the sequential run with the same seed.
func RunExperimentParallel(m *Mechanism, groups Groups, metric Metric, reps int, seed uint64, workers int) (Stat, error) {
	return experiment.RunParallel(m, groups, metric, reps, seed, workers)
}

// HeatmapASCII renders a mechanism's matrix as a terminal heatmap in the
// visual style of the paper's Figures 1, 2 and 7.
func HeatmapASCII(m *Mechanism) string {
	return heatmap.ASCII(m.Matrix())
}

// WriteHeatmapPGM writes the mechanism's matrix as a plain PGM image
// with scale×scale pixels per matrix cell.
func WriteHeatmapPGM(w io.Writer, m *Mechanism, scale int) error {
	return heatmap.WritePGM(w, m.Matrix(), scale)
}
