module privcount

go 1.24
