module privcount

go 1.23
