package privcount

import (
	"math"
	"strings"
	"testing"
)

func TestFacadeConstructors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Mechanism, error)
	}{
		{"GM", func() (*Mechanism, error) { return NewGeometric(6, 0.8) }},
		{"EM", func() (*Mechanism, error) { return NewExplicitFair(6, 0.8) }},
		{"UM", func() (*Mechanism, error) { return NewUniform(6) }},
		{"RR", func() (*Mechanism, error) { return NewRandomizedResponse(0.8) }},
		{"KRR", func() (*Mechanism, error) { return NewKRR(6, 0.8) }},
		{"EXP", func() (*Mechanism, error) { return NewExponential(6, 0.8, nil) }},
		{"LAP", func() (*Mechanism, error) { return NewTruncatedLaplace(6, 0.8) }},
	}
	for _, c := range cases {
		m, err := c.build()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !m.Matrix().IsColumnStochastic(1e-9) {
			t.Errorf("%s: not column stochastic", c.name)
		}
		if !m.SatisfiesDP(0.8, 1e-9) {
			t.Errorf("%s: violates DP: %s", c.name, m.DPViolation(0.8, 1e-9))
		}
	}
}

func TestFacadeFromMatrix(t *testing.T) {
	um, err := NewUniform(3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromMatrix("copy", 3, 0.9, um.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "copy" || m.N() != 3 {
		t.Errorf("FromMatrix: %s n=%d", m.Name(), m.N())
	}
}

func TestFacadeDesignAndWM(t *testing.T) {
	r, err := Design(DesignProblem{N: 5, Alpha: 0.9, Props: WeakHonesty | Symmetry, ReduceSymmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Mechanism.Violation(WeakHonesty, 1e-7); v != "" {
		t.Errorf("designed mechanism: %s", v)
	}
	wm, err := WM(5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if wm.L0() < r.Mechanism.L0()-1e-9 {
		t.Error("WM (more constrained) should cost at least the WH-only design")
	}
}

func TestFacadeChoose(t *testing.T) {
	c, err := Choose(5, 0.9, Fairness)
	if err != nil {
		t.Fatal(err)
	}
	if c.Mechanism.Name() != "EM" {
		t.Errorf("chose %s", c.Mechanism.Name())
	}
	if c.Rule == "" {
		t.Error("missing decision rule")
	}
}

func TestFacadePropertyHelpers(t *testing.T) {
	ps, err := ParseProperties("WH+CM")
	if err != nil {
		t.Fatal(err)
	}
	closed := ClosureOf(ps)
	if closed&ColumnHonesty == 0 {
		t.Error("closure should add CH")
	}
	if s := PropertySetString(AllProperties); !strings.Contains(s, "F") {
		t.Errorf("AllProperties renders %q", s)
	}
}

func TestFacadeClosedForms(t *testing.T) {
	if math.Abs(GeometricL0(0.62)-2*0.62/1.62) > 1e-12 {
		t.Error("GeometricL0 mismatch")
	}
	em, err := NewExplicitFair(8, 0.62)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ExplicitFairL0(8, 0.62)-em.L0()) > 1e-12 {
		t.Error("ExplicitFairL0 mismatch")
	}
}

func TestFacadeSamplerAndRand(t *testing.T) {
	em, err := NewExplicitFair(4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(em)
	if err != nil {
		t.Fatal(err)
	}
	src := NewRand(1)
	for i := 0; i < 100; i++ {
		out := s.Sample(src, 2)
		if out < 0 || out > 4 {
			t.Fatalf("sample %d out of range", out)
		}
	}
	var crypto CryptoSource
	if out := s.Sample(crypto, 2); out < 0 || out > 4 {
		t.Fatalf("crypto sample %d out of range", out)
	}
}

func TestFacadeSymmetrizeAndGS(t *testing.T) {
	gm, err := NewGeometric(4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Symmetrize(gm)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Check(Symmetry, 1e-12) {
		t.Error("Symmetrize result not symmetric")
	}
	if !DerivableFromGM(gm, 0.8) {
		t.Error("GM should pass the GS test")
	}
	em, err := NewExplicitFair(4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if DerivableFromGM(em, 0.8) {
		t.Error("EM should fail the GS test")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	src := NewRand(2)
	groups, err := BinomialGroups(1000, 5, 0.4, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups.Counts) != 200 {
		t.Fatalf("groups %d", len(groups.Counts))
	}
	bits := []bool{true, true, false, false, true, false}
	g2, err := GroupBits(bits, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Counts[0] != 2 || g2.Counts[1] != 0 || g2.Counts[2] != 1 {
		t.Fatalf("counts %v", g2.Counts)
	}

	records := GenerateAdult(300, src)
	ag, err := AdultGroups(records, TargetGender, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ag.Counts) != 60 {
		t.Fatalf("adult groups %d", len(ag.Counts))
	}
}

func TestFacadeAdultCSV(t *testing.T) {
	records := GenerateAdult(50, NewRand(3))
	var sb strings.Builder
	// WriteAdultCSV is internal-only; round-trip via the loader using a
	// hand-built line instead.
	sb.WriteString("42, Private, 1000, HS-grad, 9, Divorced, Sales, Not-in-family, White, Female, 0, 0, 40, United-States, >50K\n")
	back, err := LoadAdultCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !back[0].HighIncome || back[0].Age != 42 {
		t.Fatalf("parsed %+v", back[0])
	}
	_ = records
}

func TestFacadeExperiment(t *testing.T) {
	um, err := NewUniform(4)
	if err != nil {
		t.Fatal(err)
	}
	groups := Groups{N: 4, Counts: []int{0, 1, 2, 3, 4, 2, 1, 3}}
	st, err := RunExperiment(um, groups, WrongRate, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mean < 0.5 || st.Mean > 1 {
		t.Errorf("UM wrong rate %v", st.Mean)
	}
	st2, err := RunExperiment(um, groups, TailRate(2), 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Mean > st.Mean {
		t.Error("tail rate should not exceed wrong rate")
	}
	if EmpiricalRMSE([]int{0, 2}, []int{0, 0}) != math.Sqrt(2) {
		t.Error("EmpiricalRMSE mismatch")
	}
}

func TestFacadeHeatmaps(t *testing.T) {
	em, err := NewExplicitFair(3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(HeatmapASCII(em), "i=") {
		t.Error("ASCII heatmap malformed")
	}
	var sb strings.Builder
	if err := WriteHeatmapPGM(&sb, em, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "P2\n") {
		t.Error("PGM header missing")
	}
}

func TestFacadeUniformWeights(t *testing.T) {
	w := UniformWeights(3)
	if len(w) != 4 || w[0] != 0.25 {
		t.Errorf("UniformWeights = %v", w)
	}
}

func TestFacadeMinimaxDesign(t *testing.T) {
	r, err := DesignMinimax(DesignProblem{N: 4, Alpha: 0.8, Objective: Objective{P: 1}})
	if err != nil {
		t.Fatal(err)
	}
	worst, err := r.Mechanism.MaxLoss(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(worst-r.Cost) > 1e-7 {
		t.Errorf("minimax cost %v vs measured worst %v", r.Cost, worst)
	}
}

func TestFacadePrivacyConversions(t *testing.T) {
	eps := 0.5
	alpha := AlphaFromEpsilon(eps)
	if math.Abs(EpsilonFromAlpha(alpha)-eps) > 1e-12 {
		t.Error("epsilon/alpha round trip broken")
	}
	if math.Abs(ComposedAlpha(0.9, 2)-0.81) > 1e-12 {
		t.Error("ComposedAlpha wrong")
	}
	if math.Abs(ComposedAlpha(SplitAlpha(0.7, 3), 3)-0.7) > 1e-12 {
		t.Error("SplitAlpha not inverse of ComposedAlpha")
	}
}

func TestServiceRootAPI(t *testing.T) {
	svc := NewService(ServiceConfig{Capacity: 16, Seed: 3})
	spec := Spec{Kind: SpecChoose, N: 32, Alpha: 0.8, Props: Fairness}
	out, err := svc.Sample(spec, 20)
	if err != nil {
		t.Fatal(err)
	}
	if out < 0 || out > 32 {
		t.Fatalf("Sample = %d out of range [0, 32]", out)
	}
	outs, err := svc.SampleBatchSeeded(spec, 11, []int{0, 16, 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, err := svc.Estimate(spec, outs)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Unbiased || len(est.MLE) != 3 {
		t.Errorf("estimate = %+v", est)
	}
	if st := svc.Stats(); st.Entries != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want one cached mechanism", st)
	}
}
