// Command datasetgen generates the experiment workloads: a synthetic
// Adult-like census CSV (calibrated to the published UCI marginals) or
// Binomial group counts.
//
// Usage:
//
//	datasetgen -kind adult -rows 32561 > adult_synth.csv
//	datasetgen -kind binomial -pop 10000 -n 8 -p 0.3 > counts.txt
//	datasetgen -kind adult -stats
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"privcount/internal/dataset"
	"privcount/internal/rng"
)

func main() {
	var (
		kind  = flag.String("kind", "adult", "workload: adult|binomial")
		rows  = flag.Int("rows", dataset.AdultRows, "adult: number of records")
		pop   = flag.Int("pop", 10000, "binomial: population size")
		n     = flag.Int("n", 8, "binomial: group size")
		p     = flag.Float64("p", 0.5, "binomial: per-individual bit probability")
		seed  = flag.Uint64("seed", 1, "random seed")
		stats = flag.Bool("stats", false, "print summary statistics instead of data")
	)
	flag.Parse()

	src := rng.New(*seed)
	switch *kind {
	case "adult":
		records := dataset.GenerateAdult(*rows, src)
		if *stats {
			printAdultStats(records)
			return
		}
		if err := dataset.WriteAdultCSV(os.Stdout, records); err != nil {
			fatal(err)
		}
	case "binomial":
		groups, err := dataset.BinomialGroups(*pop, *n, *p, src)
		if err != nil {
			fatal(err)
		}
		if *stats {
			fmt.Printf("groups: %d of size %d, mean count %.3f (expected %.3f)\n",
				len(groups.Counts), groups.N, groups.Mean(), float64(*n)**p)
			fmt.Println("histogram:", groups.Histogram())
			return
		}
		w := bufio.NewWriter(os.Stdout)
		for _, c := range groups.Counts {
			fmt.Fprintln(w, c)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown kind %q (want adult|binomial)", *kind))
	}
}

func printAdultStats(records []dataset.AdultRecord) {
	var young, male, high int
	for _, r := range records {
		if r.Bit(dataset.TargetYoung) {
			young++
		}
		if r.Bit(dataset.TargetGender) {
			male++
		}
		if r.Bit(dataset.TargetIncome) {
			high++
		}
	}
	total := float64(len(records))
	fmt.Printf("records:       %d\n", len(records))
	fmt.Printf("young (<30):   %.3f (UCI Adult: ~0.31)\n", float64(young)/total)
	fmt.Printf("male:          %.3f (UCI Adult: ~0.67)\n", float64(male)/total)
	fmt.Printf("income >50K:   %.3f (UCI Adult: ~0.24)\n", float64(high)/total)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datasetgen:", err)
	os.Exit(1)
}
