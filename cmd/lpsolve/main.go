// Command lpsolve solves linear programs written in the lp_solve-style
// text format accepted by the internal solver — the same interchange
// format the paper's PyLPSolve pipeline used.
//
// Usage:
//
//	lpsolve model.lp
//	echo 'max: 3x + 2y; c1: x + y <= 4; c2: x + 3y <= 6;' | lpsolve -
//	lpsolve -duals model.lp
//	lpsolve -method ipm -stats model.lp
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"privcount/internal/lp"
)

func main() {
	var (
		showDuals = flag.Bool("duals", false, "print dual values per constraint")
		echo      = flag.Bool("echo", false, "echo the parsed model before solving")
		maxIter   = flag.Int("maxiter", 0, "simplex iteration limit (0 = automatic)")
		stats     = flag.Bool("stats", false, "print solver statistics (route, iterations, factorizations, nonzeros, wall time)")
		method    = flag.String("method", "auto", "solver back end: auto, sparse, dense, unbounded, or ipm")
	)
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lpsolve [-duals] [-echo] [-method m] <file.lp | ->")
		os.Exit(2)
	}
	m, err := parseMethod(*method)
	if err != nil {
		fatal(err)
	}
	src, err := readSource(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	model, err := lp.ParseLP(src)
	if err != nil {
		fatal(err)
	}
	if *echo {
		fmt.Print(model.WriteLP())
		fmt.Println()
	}

	start := time.Now()
	sol, err := model.SolveWith(lp.Options{MaxIterations: *maxIter, Method: m})
	elapsed := time.Since(start)
	if err != nil {
		// Terminations are first-class: report the cause (classified via
		// the lp sentinel errors, not string matching) alongside whatever
		// partial solution the solver handed back, then exit non-zero.
		if sol != nil {
			fmt.Printf("status:     %s\n", sol.Status)
			fmt.Printf("cause:      %s\n", lp.Cause(err))
			if *stats {
				fmt.Printf("iterations: %d\n", sol.Iterations)
				fmt.Printf("solve_seconds: %.6f\n", elapsed.Seconds())
			}
		}
		fatal(err)
	}
	fmt.Printf("status:     %s\n", sol.Status)
	fmt.Printf("objective:  %.10g\n", sol.Objective)
	fmt.Printf("iterations: %d\n", sol.Iterations)
	if *stats {
		ps := sol.Presolve
		fmt.Printf("stats:\n")
		fmt.Printf("  rows             %d\n", model.NumConstraints())
		fmt.Printf("  cols             %d\n", model.NumVariables())
		fmt.Printf("  nnz              %d\n", model.NumNonzeros())
		fmt.Printf("  route            %s\n", sol.Route)
		fmt.Printf("  presolve_rows    %d -> %d\n", ps.RowsIn, ps.RowsOut)
		fmt.Printf("  bounds_folded    %d\n", ps.BoundsFolded)
		fmt.Printf("  rows_dominated   %d\n", ps.DominatedRows)
		fmt.Printf("  rows_duplicate   %d\n", ps.DuplicateRows)
		fmt.Printf("  rows_implied     %d\n", ps.ImpliedRows+ps.EmptyRows)
		fmt.Printf("  vars_fixed       %d\n", ps.FixedVars)
		fmt.Printf("  bound_flips      %d\n", sol.BoundFlips)
		fmt.Printf("  factorizations   %d\n", sol.Refactorizations)
		if sol.Route == "ipm" {
			fmt.Printf("  duality_gap      %.3g\n", sol.Gap)
		}
		fmt.Printf("  solve_seconds    %.6f\n", elapsed.Seconds())
	}
	fmt.Println("variables:")
	for v := 0; v < model.NumVariables(); v++ {
		fmt.Printf("  %-16s %.10g\n", model.VariableName(v), sol.Value(v))
	}
	if *showDuals {
		fmt.Println("duals:")
		for i := 0; i < model.NumConstraints(); i++ {
			fmt.Printf("  %-16s %.10g\n", model.Constraint(i).Name, sol.Duals[i])
		}
	}
}

// parseMethod maps the -method flag onto the solver back ends. "auto"
// keeps the full routing chain (presolve, dual route, IPM for huge
// models, simplex, oracle fallbacks); the named methods force one
// engine, which is how the cross-validation harnesses drive the CLI.
func parseMethod(s string) (lp.Method, error) {
	switch s {
	case "", "auto":
		return lp.MethodAuto, nil
	case "sparse":
		return lp.MethodSparse, nil
	case "dense":
		return lp.MethodDense, nil
	case "unbounded":
		return lp.MethodUnboundedSparse, nil
	case "ipm":
		return lp.MethodIPM, nil
	}
	return 0, fmt.Errorf("unknown -method %q (want auto, sparse, dense, unbounded, or ipm)", s)
}

func readSource(path string) (string, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return "", err
		}
		defer f.Close()
		r = f
	}
	b, err := io.ReadAll(r)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lpsolve:", err)
	os.Exit(1)
}
