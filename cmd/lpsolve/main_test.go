package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privcount/internal/lp"
)

func TestReadSourceFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.lp")
	const content = "min: x; c: x >= 1;"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != content {
		t.Fatalf("read %q", got)
	}
}

// TestStatsReportPresolveAndRoute pins the -stats surface: presolve
// reductions (rows in -> out, folded bounds) and the solver route taken
// must be reported, since operators use them to see whether a model is
// being served by the bounded engine or falling back.
func TestStatsReportPresolveAndRoute(t *testing.T) {
	model, err := lp.ParseLP("min: 2x + 3y; c1: x + y >= 4; c2: x >= 1; c3: y <= 10;")
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.SolveWith(lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Route == "" {
		t.Error("Solution.Route is empty; -stats would print nothing useful")
	}
	if sol.Presolve.RowsIn != 3 || sol.Presolve.BoundsFolded != 2 {
		t.Errorf("presolve stats %+v, want RowsIn=3 BoundsFolded=2 (the two singleton rows)", sol.Presolve)
	}
	if sol.Presolve.RowsOut >= sol.Presolve.RowsIn {
		t.Errorf("presolve did not reduce: %d -> %d", sol.Presolve.RowsIn, sol.Presolve.RowsOut)
	}
}

// TestParseMethod pins the -method vocabulary: each name must map onto
// its solver back end, the empty string and "auto" onto the routing
// chain, and anything else must be rejected before a solve starts.
func TestParseMethod(t *testing.T) {
	want := map[string]lp.Method{
		"":          lp.MethodAuto,
		"auto":      lp.MethodAuto,
		"sparse":    lp.MethodSparse,
		"dense":     lp.MethodDense,
		"unbounded": lp.MethodUnboundedSparse,
		"ipm":       lp.MethodIPM,
	}
	for name, m := range want {
		got, err := parseMethod(name)
		if err != nil || got != m {
			t.Errorf("parseMethod(%q) = %v, %v, want %v", name, got, err, m)
		}
	}
	if _, err := parseMethod("simplex2"); err == nil {
		t.Error("parseMethod accepted an unknown back end")
	}
}

// TestMethodIPMSolvesAndReportsGap drives the forced interior point
// route the way `lpsolve -method ipm -stats` does and checks the stats
// the CLI prints from it: the route tag, a factorization count, and a
// duality gap within the engine's advertised tolerance.
func TestMethodIPMSolvesAndReportsGap(t *testing.T) {
	model, err := lp.ParseLP("min: x + 2y; c1: x + y >= 4; c2: x + 3y >= 6; x <= 10; y <= 10;")
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.SolveWith(lp.Options{Method: lp.MethodIPM})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Route != "ipm" {
		t.Fatalf("route = %q, want ipm", sol.Route)
	}
	if diff := sol.Objective - 5; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("objective = %v, want 5 within 1e-6", sol.Objective)
	}
	if sol.Refactorizations < 1 {
		t.Errorf("factorizations = %d, want >= 1 on the ipm route", sol.Refactorizations)
	}
	if sol.Gap < 0 || sol.Gap > 1e-6 {
		t.Errorf("duality gap = %v, want in [0, 1e-6]", sol.Gap)
	}
}

func TestReadSourceMissingFile(t *testing.T) {
	if _, err := readSource("/does/not/exist.lp"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadSourceStdin(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = old }()
	go func() {
		w.WriteString("max: y; c: y <= 3;")
		w.Close()
	}()
	got, err := readSource("-")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "max: y") {
		t.Fatalf("stdin read %q", got)
	}
}
