package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privcount/internal/lp"
)

func TestReadSourceFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.lp")
	const content = "min: x; c: x >= 1;"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != content {
		t.Fatalf("read %q", got)
	}
}

// TestStatsReportPresolveAndRoute pins the -stats surface: presolve
// reductions (rows in -> out, folded bounds) and the solver route taken
// must be reported, since operators use them to see whether a model is
// being served by the bounded engine or falling back.
func TestStatsReportPresolveAndRoute(t *testing.T) {
	model, err := lp.ParseLP("min: 2x + 3y; c1: x + y >= 4; c2: x >= 1; c3: y <= 10;")
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.SolveWith(lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Route == "" {
		t.Error("Solution.Route is empty; -stats would print nothing useful")
	}
	if sol.Presolve.RowsIn != 3 || sol.Presolve.BoundsFolded != 2 {
		t.Errorf("presolve stats %+v, want RowsIn=3 BoundsFolded=2 (the two singleton rows)", sol.Presolve)
	}
	if sol.Presolve.RowsOut >= sol.Presolve.RowsIn {
		t.Errorf("presolve did not reduce: %d -> %d", sol.Presolve.RowsIn, sol.Presolve.RowsOut)
	}
}

func TestReadSourceMissingFile(t *testing.T) {
	if _, err := readSource("/does/not/exist.lp"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadSourceStdin(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = old }()
	go func() {
		w.WriteString("max: y; c: y <= 3;")
		w.Close()
	}()
	got, err := readSource("-")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "max: y") {
		t.Fatalf("stdin read %q", got)
	}
}
