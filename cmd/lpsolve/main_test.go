package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadSourceFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.lp")
	const content = "min: x; c: x >= 1;"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != content {
		t.Fatalf("read %q", got)
	}
}

func TestReadSourceMissingFile(t *testing.T) {
	if _, err := readSource("/does/not/exist.lp"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadSourceStdin(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = old }()
	go func() {
		w.WriteString("max: y; c: y <= 3;")
		w.Close()
	}()
	got, err := readSource("-")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "max: y") {
		t.Fatalf("stdin read %q", got)
	}
}
