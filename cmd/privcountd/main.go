// Command privcountd serves differentially private count releases over
// HTTP/JSON, backed by the internal/service mechanism cache: each
// requested scenario (mechanism kind, group size n, privacy level alpha,
// §IV-A property set, objective) is constructed on first touch by a
// bounded background build pool and every later request is served from
// precomputed tables.
//
// Usage:
//
//	privcountd -addr :8080 -capacity 256 -shards 8 -build-workers 4
//
// Endpoints (request bodies are JSON):
//
//	GET  /healthz              liveness probe
//	GET  /v1/stats             cache + build-pipeline statistics
//	POST /v1/mechanism         describe the mechanism a spec resolves to;
//	                           "wait": false admits asynchronously and
//	                           returns 202 plus a build-status document
//	GET  /v1/mechanism/status  poll build state for a spec (query params)
//	POST /v1/sample            one noisy release for one true count
//	POST /v1/batch             noisy releases for a batch of true counts
//	POST /v1/estimate          MLE decode + debiased aggregate for observed outputs
//
// A spec is the JSON object embedded in every request:
//
//	{"mechanism": "choose", "n": 64, "alpha": 0.5, "properties": "WH+CM"}
//
// mechanism is one of choose (default; the paper's Figure 5 procedure),
// gm, em, um, lp, lp-minimax; properties uses the core property codes
// (RH, RM, CH, CM, F, WH, S, ODP); objective_p selects the O_{p,Σ}
// exponent for the LP kinds. Batch requests may carry a "seed" for
// reproducible draws; omitting it uses the server's pooled randomness.
//
// Expensive builds are a managed background workload, not request-scoped
// work: a synchronous request whose client disconnects mid-build cancels
// the build (unless a prior async admission pinned it), an asynchronous
// admission ("wait": false) survives its originating request and is
// polled via /v1/mechanism/status, and SIGINT/SIGTERM drain the build
// pool before the process exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/url"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"privcount/internal/core"
	"privcount/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		capacity = flag.Int("capacity", 256, "total cached mechanisms across shards")
		shards   = flag.Int("shards", 8, "cache shard count (rounded up to a power of two)")
		seed     = flag.Uint64("seed", 0, "RNG pool seed; 0 seeds from the OS CSPRNG")
		workers  = flag.Int("build-workers", 0, "background mechanism-build workers (0 = GOMAXPROCS, capped at 8)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	cfg := service.Config{Capacity: *capacity, Shards: *shards, Seed: *seed, BuildWorkers: *workers}
	if err := run(ctx, *addr, cfg, nil); err != nil {
		log.Fatal(err)
	}
}

// run starts the server and blocks until ctx is cancelled (SIGINT or
// SIGTERM in production), then shuts down gracefully: the listener
// closes, in-flight handlers get shutdownGrace to finish, and the
// service's build pool drains — queued and in-flight builds are
// cancelled and their workers joined — before run returns. ready, if
// non-nil, receives the bound listen address once the server accepts
// connections (tests listen on ":0").
func run(ctx context.Context, addr string, cfg service.Config, ready chan<- string) error {
	svc := service.New(cfg)
	srv := &http.Server{
		Handler:           newMux(svc),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		// No handler blocks on an LP solve anymore — synchronous
		// mechanism requests wait on the build pool but their clients can
		// (and should) use async admission + status polling for anything
		// slow — so the write deadline is a serving deadline, not a
		// solver budget. A client that hangs up mid-build cancels the
		// build instead of leaving it to warm the cache for nobody.
		WriteTimeout: 30 * time.Second,
		BaseContext:  func(net.Listener) context.Context { return ctx },
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		svc.Close()
		return err
	}
	log.Printf("privcountd listening on %s (capacity=%d shards=%d)", ln.Addr(), cfg.Capacity, cfg.Shards)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	log.Printf("privcountd shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	shutdownErr := srv.Shutdown(shCtx)
	// Close after Shutdown: handlers have returned (or been abandoned),
	// so cancelling the remaining builds strands no request, and Close
	// blocks until every worker goroutine has exited.
	svc.Close()
	<-errc // Serve has returned http.ErrServerClosed
	if shutdownErr != nil {
		return fmt.Errorf("privcountd: shutdown: %w", shutdownErr)
	}
	return nil
}

// shutdownGrace bounds how long in-flight handlers may run after a
// termination signal before the server gives up on them.
const shutdownGrace = 10 * time.Second

// specRequest is the wire form of a service.Spec, embedded in every
// request body.
type specRequest struct {
	Mechanism  string  `json:"mechanism"`
	N          int     `json:"n"`
	Alpha      float64 `json:"alpha"`
	Properties string  `json:"properties"`
	ObjectiveP float64 `json:"objective_p"`
}

// spec parses the wire form into a service.Spec.
func (r specRequest) spec() (service.Spec, error) {
	kind, err := service.ParseKind(r.Mechanism)
	if err != nil {
		return service.Spec{}, err
	}
	props, err := core.ParseProperties(r.Properties)
	if err != nil {
		return service.Spec{}, err
	}
	return service.Spec{Kind: kind, N: r.N, Alpha: r.Alpha, Props: props, ObjectiveP: r.ObjectiveP}, nil
}

// specFromQuery parses a spec from URL query parameters (the GET status
// endpoint has no body): mechanism, n, alpha, properties, objective_p.
func specFromQuery(q url.Values) (service.Spec, error) {
	var r specRequest
	r.Mechanism = q.Get("mechanism")
	r.Properties = q.Get("properties")
	if v := q.Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return service.Spec{}, fmt.Errorf("invalid n %q: %w", v, err)
		}
		r.N = n
	}
	if v := q.Get("alpha"); v != "" {
		a, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return service.Spec{}, fmt.Errorf("invalid alpha %q: %w", v, err)
		}
		r.Alpha = a
	}
	if v := q.Get("objective_p"); v != "" {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return service.Spec{}, fmt.Errorf("invalid objective_p %q: %w", v, err)
		}
		r.ObjectiveP = p
	}
	return r.spec()
}

// statusDoc renders a build-status snapshot for the async endpoints.
func statusDoc(info service.BuildInfo) map[string]any {
	doc := map[string]any{
		"state":         info.State.String(),
		"build_seconds": info.BuildSeconds,
	}
	if info.Err != nil {
		doc["error"] = info.Err.Error()
	}
	return doc
}

// newMux wires the HTTP routes to svc; split from main for testing.
func newMux(svc *service.Service) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		st := svc.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"entries": st.Entries, "hits": st.Hits,
			"misses": st.Misses, "evictions": st.Evictions,
			"build_queue_depth": st.QueueDepth,
			"builds_in_flight":  st.InFlight,
			"builds":            st.Builds,
			"build_failures":    st.BuildFailures,
			"build_cancels":     st.BuildCancels,
			"build_seconds":     st.BuildSeconds,
		})
	})
	mux.HandleFunc("POST /v1/mechanism", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			specRequest
			Wait *bool `json:"wait"`
		}
		spec, ok := decodeSpec(w, r, &req)
		if !ok {
			return
		}
		if req.Wait != nil && !*req.Wait {
			// Async admission: hand the build to the background pool and
			// answer immediately. The build is detached — it outlives this
			// request — and its progress is polled via GET
			// /v1/mechanism/status. 202 signals "admitted, not ready";
			// an already-ready spec falls through to the full document.
			info, err := svc.Start(spec)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			if info.State != service.BuildReady {
				writeJSON(w, http.StatusAccepted, statusDoc(info))
				return
			}
		}
		e, err := svc.GetCtx(r.Context(), spec)
		if err != nil {
			writeError(w, statusForBuildErr(err), err)
			return
		}
		m := e.Mechanism()
		_, debiasErr := e.Debias()
		writeJSON(w, http.StatusOK, map[string]any{
			"name":       m.Name(),
			"n":          m.N(),
			"alpha":      m.Alpha(),
			"rule":       e.Rule(),
			"properties": core.PropertySetString(e.Props()),
			"l0":         m.L0(),
			"debiasable": debiasErr == nil,
		})
	})
	mux.HandleFunc("GET /v1/mechanism/status", func(w http.ResponseWriter, r *http.Request) {
		spec, err := specFromQuery(r.URL.Query())
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		info, err := svc.Status(spec)
		if errors.Is(err, service.ErrNotAdmitted) {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"state": "absent", "error": err.Error(),
			})
			return
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, statusDoc(info))
	})
	mux.HandleFunc("POST /v1/sample", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			specRequest
			Count int `json:"count"`
		}
		spec, ok := decodeSpec(w, r, &req)
		if !ok {
			return
		}
		// The request context rides into a cold spec's build, so a
		// client that disconnects mid-build releases (and, when it was
		// the only interest, cancels) the build; on a warm entry the
		// sample is a table read that never consults it.
		out, err := svc.SampleCtx(r.Context(), spec, req.Count)
		if err != nil {
			writeError(w, statusForBuildErr(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"output": out})
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			specRequest
			Counts []int   `json:"counts"`
			Seed   *uint64 `json:"seed"`
		}
		spec, ok := decodeSpec(w, r, &req)
		if !ok {
			return
		}
		if len(req.Counts) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("empty counts"))
			return
		}
		var outs []int
		var err error
		if req.Seed != nil {
			outs, err = svc.SampleBatchSeededCtx(r.Context(), spec, *req.Seed, req.Counts, nil)
		} else {
			outs, err = svc.SampleBatchCtx(r.Context(), spec, req.Counts, nil)
		}
		if err != nil {
			writeError(w, statusForBuildErr(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"outputs": outs})
	})
	mux.HandleFunc("POST /v1/estimate", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			specRequest
			Outputs []int `json:"outputs"`
		}
		spec, ok := decodeSpec(w, r, &req)
		if !ok {
			return
		}
		if len(req.Outputs) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("empty outputs"))
			return
		}
		est, err := svc.EstimateCtx(r.Context(), spec, req.Outputs)
		if err != nil {
			writeError(w, statusForBuildErr(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"mle": est.MLE, "sum": est.Sum, "mean": est.Mean, "unbiased": est.Unbiased,
		})
	})
	return mux
}

// statusForBuildErr maps a lookup failure to an HTTP status: client
// mistakes (validation, deterministic build errors) are 400s, while a
// build cut short by cancellation or shutdown is a 503 the client may
// retry — the entry is rebuildable.
func statusForBuildErr(err error) int {
	if errors.Is(err, service.ErrClosed) ||
		errors.Is(err, service.ErrBuildAbandoned) ||
		errors.Is(err, service.ErrEvicted) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// specCarrier lets decodeSpec extract the embedded specRequest from each
// request shape.
type specCarrier interface{ carriedSpec() specRequest }

func (r specRequest) carriedSpec() specRequest { return r }

// decodeSpec decodes the JSON body into dst (which embeds specRequest)
// and parses the spec, writing an HTTP error and returning ok=false on
// failure.
func decodeSpec(w http.ResponseWriter, r *http.Request, dst specCarrier) (service.Spec, bool) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return service.Spec{}, false
	}
	spec, err := dst.carriedSpec().spec()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return service.Spec{}, false
	}
	return spec, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("privcountd: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}
