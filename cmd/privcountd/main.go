// Command privcountd serves differentially private count releases over
// HTTP/JSON, backed by the internal/service mechanism cache: each
// requested scenario (mechanism kind, group size n, privacy level alpha,
// §IV-A property set, objective) is constructed on first touch by a
// bounded background build pool and every later request is served from
// precomputed tables.
//
// Usage:
//
//	privcountd -addr :8080 -capacity 256 -shards 8 -build-workers 4 \
//	           -store-dir /var/lib/privcount
//
// With -store-dir set, built mechanisms persist to disk as versioned
// binary artifacts: a restarted daemon serves previously built
// mechanisms in O(read) instead of re-running the LP solver, and peers
// warm-sync via the /v2 artifact routes.
//
// With -peers and -self set, the daemon joins a static fleet: mechanism
// IDs are sharded across peers by consistent hashing, a background
// agent pulls artifacts this node owns (or replicates) from whichever
// peer built them, and requests for non-owned IDs are proxied or
// redirected (-route-mode) to the ring owner:
//
//	privcountd -addr :8080 -self http://node-a:8080 \
//	           -peers http://node-a:8080,http://node-b:8080,http://node-c:8080 \
//	           -replication 2 -route-mode proxy -store-dir /var/lib/privcount
//
// The route set lives in internal/httpapi. The v2 API is organised
// around mechanism identity — the canonical spec token (e.g.
// "lp:n=64:a=0.5:RH+RM+CH+CM+WH:p=0") is the resource ID:
//
//	GET  /healthz                       liveness probe
//	GET  /metrics                       Prometheus text exposition
//	GET  /v2/stats                      cache + build + store statistics
//	PUT  /v2/mechanisms/{id}            admit a mechanism for background build
//	GET  /v2/mechanisms/{id}            build status + detail when ready
//	GET  /v2/mechanisms/{id}/artifact   binary export of the built mechanism
//	PUT  /v2/mechanisms/{id}/artifact   import a pre-built mechanism artifact
//	GET  /v2/mechanisms                 list every cached mechanism
//	POST /v2/query                      multiplexed sample/batch/estimate batch
//
// POST /v2/query negotiates its transport per direction: JSON by
// default, or the length-prefixed binary frame stream (Content-Type /
// Accept "application/x-privcount-batch") for high-throughput batch
// sampling. The retired v1 surface answers 410 Gone with a Link header
// naming each route's v2 successor. The package client is the typed Go
// SDK for the v2 surface, including the binary codec.
//
// Expensive builds are a managed background workload, not request-scoped
// work: a synchronous request whose client disconnects mid-build cancels
// the build (unless a prior async admission pinned it), a PUT admission
// survives its originating request and is polled via GET, and
// SIGINT/SIGTERM drain the build pool before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"privcount/internal/cluster"
	"privcount/internal/httpapi"
	"privcount/internal/metrics"
	"privcount/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		capacity = flag.Int("capacity", 256, "total cached mechanisms across shards")
		shards   = flag.Int("shards", 8, "cache shard count (rounded up to a power of two)")
		seed     = flag.Uint64("seed", 0, "RNG pool seed; 0 seeds from the OS CSPRNG")
		workers  = flag.Int("build-workers", 0, "background mechanism-build workers (0 = GOMAXPROCS, capped at 8)")

		maxQueueDepth = flag.Int("max-queue-depth", 0,
			"shed new build admissions when this many are already queued (0 = build queue capacity, negative = unlimited)")
		maxInFlightSecs = flag.Float64("max-inflight-build-seconds", 0,
			"shed new build admissions while running builds have spent this many summed wall seconds (0 = unlimited)")
		shedRetryAfter = flag.Duration("shed-retry-after", 0,
			"Retry-After advice attached to shed responses (0 = 1s)")

		storeDir = flag.String("store-dir", "",
			"directory for the persistent mechanism store; builds found there skip the solver and successful builds persist to it (empty = no persistence)")

		peers = flag.String("peers", "",
			"comma-separated base URLs of every fleet member, self included (empty = single node, no cluster layer)")
		self = flag.String("self", "",
			"this node's base URL as it appears in -peers (required with -peers)")
		routeMode = flag.String("route-mode", "proxy",
			"how requests for non-owned mechanism IDs reach the ring owner: proxy or redirect")
		syncInterval = flag.Duration("sync-interval", 0,
			"warm-sync poll period (0 = 5s default)")
		replication = flag.Int("replication", 0,
			"peers (owner included) holding each mechanism (0 = 2, clamped to fleet size)")
		vnodes = flag.Int("vnodes", 0,
			"virtual nodes per peer on the consistent-hash ring (0 = 64)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	cfg := service.Config{
		Capacity: *capacity, Shards: *shards, Seed: *seed, BuildWorkers: *workers,
		Admission: service.AdmissionConfig{
			MaxQueueDepth:      *maxQueueDepth,
			MaxInFlightSeconds: *maxInFlightSecs,
			RetryAfter:         *shedRetryAfter,
		},
	}
	if *storeDir != "" {
		store, err := service.NewFSStore(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Store = store
	}
	var ccfg *cluster.Config
	if *peers != "" {
		if *self == "" {
			log.Fatal("privcountd: -peers requires -self")
		}
		mode, err := cluster.ParseRouteMode(*routeMode)
		if err != nil {
			log.Fatal(err)
		}
		var peerSet []cluster.Peer
		for _, u := range strings.Split(*peers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				peerSet = append(peerSet, cluster.Peer{URL: u})
			}
		}
		ccfg = &cluster.Config{
			Self:         *self,
			Membership:   cluster.Static(peerSet),
			Replication:  *replication,
			VirtualNodes: *vnodes,
			PollInterval: *syncInterval,
			RouteMode:    mode,
			Logf:         log.Printf,
		}
	}
	if err := run(ctx, *addr, cfg, ccfg, nil); err != nil {
		log.Fatal(err)
	}
}

// newMux wires the HTTP routes to svc and, when ccfg is non-nil, the
// cluster node's sync agent and request routing; the handlers live in
// internal/httpapi so tests and in-process embedders share them. The
// returned node is nil for single-box daemons.
func newMux(svc *service.Service, ccfg *cluster.Config) (http.Handler, *cluster.Node, error) {
	if ccfg == nil {
		return httpapi.NewMux(svc), nil, nil
	}
	node, err := cluster.New(svc, *ccfg)
	if err != nil {
		return nil, nil, err
	}
	return httpapi.NewMuxWithCluster(svc, metrics.NewRegistry(), node), node, nil
}

// run starts the server and blocks until ctx is cancelled (SIGINT or
// SIGTERM in production), then shuts down gracefully: the listener
// closes, in-flight handlers get shutdownGrace to finish, and the
// service's build pool drains — queued and in-flight builds are
// cancelled and their workers joined — before run returns. ready, if
// non-nil, receives the bound listen address once the server accepts
// connections (tests listen on ":0").
func run(ctx context.Context, addr string, cfg service.Config, ccfg *cluster.Config, ready chan<- string) error {
	svc := service.New(cfg)
	mux, node, err := newMux(svc, ccfg)
	if err != nil {
		svc.Close()
		return err
	}
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		// No handler blocks on an LP solve anymore — synchronous
		// requests wait on the build pool but their clients can (and
		// should) use PUT admission + status polling for anything slow —
		// so the write deadline is a serving deadline, not a solver
		// budget. A client that hangs up mid-build cancels the build
		// instead of leaving it to warm the cache for nobody.
		WriteTimeout: 30 * time.Second,
		BaseContext:  func(net.Listener) context.Context { return ctx },
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if node != nil {
			node.Close()
		}
		svc.Close()
		return err
	}
	log.Printf("privcountd listening on %s (capacity=%d shards=%d)", ln.Addr(), cfg.Capacity, cfg.Shards)
	if node != nil {
		node.Start()
		log.Printf("privcountd cluster node %s (peers=%d replication=%d route=%s)",
			node.Self(), len(node.Status().Peers), node.Replication(), node.RouteMode())
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if node != nil {
			node.Close()
		}
		svc.Close()
		return err
	case <-ctx.Done():
	}
	log.Printf("privcountd shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	shutdownErr := srv.Shutdown(shCtx)
	// Close after Shutdown: handlers have returned (or been abandoned),
	// so cancelling the remaining builds strands no request, and Close
	// blocks until every worker goroutine has exited. The cluster node
	// goes first — its sync agent imports into svc, so no pull may land
	// after the service starts tearing down.
	if node != nil {
		node.Close()
	}
	svc.Close()
	<-errc // Serve has returned http.ErrServerClosed
	if shutdownErr != nil {
		return fmt.Errorf("privcountd: shutdown: %w", shutdownErr)
	}
	return nil
}

// shutdownGrace bounds how long in-flight handlers may run after a
// termination signal before the server gives up on them.
const shutdownGrace = 10 * time.Second
