// Command privcountd serves differentially private count releases over
// HTTP/JSON, backed by the internal/service mechanism cache: each
// requested scenario (mechanism kind, group size n, privacy level alpha,
// §IV-A property set, objective) is constructed on first touch and every
// later request is served from precomputed tables.
//
// Usage:
//
//	privcountd -addr :8080 -capacity 256 -shards 8
//
// Endpoints (all request bodies are JSON):
//
//	GET  /healthz       liveness probe
//	GET  /v1/stats      cache statistics (entries, hits, misses, evictions)
//	POST /v1/mechanism  describe the mechanism a spec resolves to
//	POST /v1/sample     one noisy release for one true count
//	POST /v1/batch      noisy releases for a batch of true counts
//	POST /v1/estimate   MLE decode + debiased aggregate for observed outputs
//
// A spec is the JSON object embedded in every request:
//
//	{"mechanism": "choose", "n": 64, "alpha": 0.5, "properties": "WH+CM"}
//
// mechanism is one of choose (default; the paper's Figure 5 procedure),
// gm, em, um, lp, lp-minimax; properties uses the core property codes
// (RH, RM, CH, CM, F, WH, S, ODP); objective_p selects the O_{p,Σ}
// exponent for the LP kinds. Batch requests may carry a "seed" for
// reproducible draws; omitting it uses the server's pooled randomness.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"privcount/internal/core"
	"privcount/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		capacity = flag.Int("capacity", 256, "total cached mechanisms across shards")
		shards   = flag.Int("shards", 8, "cache shard count (rounded up to a power of two)")
		seed     = flag.Uint64("seed", 0, "RNG pool seed; 0 seeds from the OS CSPRNG")
	)
	flag.Parse()

	svc := service.New(service.Config{Capacity: *capacity, Shards: *shards, Seed: *seed})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newMux(svc),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		// The write deadline must outlast the slowest admissible cold
		// build: an LP-backed spec at service.MaxLPN=512 takes ~40 s on
		// current hardware (bounded simplex + presolve + crash basis),
		// and the handler blocks for the whole build (duplicate requests
		// queue behind it via singleflight). 5 minutes leaves room for
		// slower machines; the build still completes and warms the cache
		// even if an impatient client hangs up first.
		WriteTimeout: 300 * time.Second,
	}
	log.Printf("privcountd listening on %s (capacity=%d shards=%d)", *addr, *capacity, *shards)
	log.Fatal(srv.ListenAndServe())
}

// specRequest is the wire form of a service.Spec, embedded in every
// request body.
type specRequest struct {
	Mechanism  string  `json:"mechanism"`
	N          int     `json:"n"`
	Alpha      float64 `json:"alpha"`
	Properties string  `json:"properties"`
	ObjectiveP float64 `json:"objective_p"`
}

// spec parses the wire form into a service.Spec.
func (r specRequest) spec() (service.Spec, error) {
	kind, err := service.ParseKind(r.Mechanism)
	if err != nil {
		return service.Spec{}, err
	}
	props, err := core.ParseProperties(r.Properties)
	if err != nil {
		return service.Spec{}, err
	}
	return service.Spec{Kind: kind, N: r.N, Alpha: r.Alpha, Props: props, ObjectiveP: r.ObjectiveP}, nil
}

// newMux wires the HTTP routes to svc; split from main for testing.
func newMux(svc *service.Service) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		st := svc.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"entries": st.Entries, "hits": st.Hits,
			"misses": st.Misses, "evictions": st.Evictions,
		})
	})
	mux.HandleFunc("POST /v1/mechanism", func(w http.ResponseWriter, r *http.Request) {
		var req specRequest
		spec, ok := decodeSpec(w, r, &req)
		if !ok {
			return
		}
		e, err := svc.Get(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		m := e.Mechanism()
		_, debiasErr := e.Debias()
		writeJSON(w, http.StatusOK, map[string]any{
			"name":       m.Name(),
			"n":          m.N(),
			"alpha":      m.Alpha(),
			"rule":       e.Rule(),
			"properties": core.PropertySetString(e.Props()),
			"l0":         m.L0(),
			"debiasable": debiasErr == nil,
		})
	})
	mux.HandleFunc("POST /v1/sample", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			specRequest
			Count int `json:"count"`
		}
		spec, ok := decodeSpec(w, r, &req)
		if !ok {
			return
		}
		out, err := svc.Sample(spec, req.Count)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"output": out})
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			specRequest
			Counts []int   `json:"counts"`
			Seed   *uint64 `json:"seed"`
		}
		spec, ok := decodeSpec(w, r, &req)
		if !ok {
			return
		}
		if len(req.Counts) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("empty counts"))
			return
		}
		var outs []int
		var err error
		if req.Seed != nil {
			outs, err = svc.SampleBatchSeeded(spec, *req.Seed, req.Counts, nil)
		} else {
			outs, err = svc.SampleBatch(spec, req.Counts, nil)
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"outputs": outs})
	})
	mux.HandleFunc("POST /v1/estimate", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			specRequest
			Outputs []int `json:"outputs"`
		}
		spec, ok := decodeSpec(w, r, &req)
		if !ok {
			return
		}
		if len(req.Outputs) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("empty outputs"))
			return
		}
		est, err := svc.Estimate(spec, req.Outputs)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"mle": est.MLE, "sum": est.Sum, "mean": est.Mean, "unbiased": est.Unbiased,
		})
	})
	return mux
}

// specCarrier lets decodeSpec extract the embedded specRequest from each
// request shape.
type specCarrier interface{ carriedSpec() specRequest }

func (r specRequest) carriedSpec() specRequest { return r }

// decodeSpec decodes the JSON body into dst (which embeds specRequest)
// and parses the spec, writing an HTTP error and returning ok=false on
// failure.
func decodeSpec(w http.ResponseWriter, r *http.Request, dst specCarrier) (service.Spec, bool) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return service.Spec{}, false
	}
	spec, err := dst.carriedSpec().spec()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return service.Spec{}, false
	}
	return spec, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("privcountd: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}
