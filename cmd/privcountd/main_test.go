package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"privcount/internal/cluster"
	"privcount/internal/service"
)

// The handler-level suite lives with the handlers in
// internal/httpapi; this package tests the daemon wiring (newMux, the
// run lifecycle) plus the cross-version guarantees in v2_test.go.

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{Capacity: 32, Seed: 7})
	t.Cleanup(svc.Close)
	mux, _, err := newMux(svc, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestGracefulShutdownDrains boots the real server loop, serves a
// request, then delivers the signal-context cancellation and checks run
// returns cleanly — listener closed, build workers joined — within the
// shutdown grace. Run under -race this is the shutdown leak test.
func TestGracefulShutdownDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, "127.0.0.1:0", service.Config{Capacity: 16, Seed: 3}, nil, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Post("http://"+addr+"/v2/query", "application/json",
		bytes.NewReader([]byte(`{"ops":[{"op":"sample","id":"gm:n=8:a=0.5","count":2}]}`)))
	if err != nil {
		t.Fatalf("request against live server: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample status %d", resp.StatusCode)
	}
	// Park a slow detached build so shutdown has something in flight to
	// cancel (a cold n=96 minimax solve runs far beyond this test, so a
	// timely exit proves the drain cancelled it). PUT admission is
	// detached exactly like the old wait=false flow.
	req, err := http.NewRequest(http.MethodPut,
		"http://"+addr+"/v2/mechanisms/lp-minimax:n=96:a=0.9:none:p=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async admission status %d, want 202", resp.StatusCode)
	}

	cancel() // what SIGTERM does in main
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(shutdownGrace + 30*time.Second):
		t.Fatal("run did not return after shutdown signal")
	}
	// The listener is gone.
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestClusterWiring boots run with a cluster config (a one-member
// fleet whose self URL is the membership's only entry) and checks the
// flag-driven wiring end to end: the node starts, GET /v2/cluster
// answers with the configured ring, and shutdown closes the sync agent
// before the service without hanging.
func TestClusterWiring(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	self := "http://127.0.0.1:9" // ring identity only; never dialed (sync skips self)
	ccfg := &cluster.Config{
		Self:         self,
		Membership:   cluster.Static([]cluster.Peer{{URL: self}}),
		PollInterval: time.Hour, // no background passes during the test
	}
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, "127.0.0.1:0", service.Config{Capacity: 16, Seed: 5}, ccfg, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get("http://" + addr + "/v2/cluster")
	if err != nil {
		t.Fatalf("GET /v2/cluster: %v", err)
	}
	var st struct {
		Self        string   `json:"self"`
		Peers       []string `json:"peers"`
		Replication int      `json:"replication"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode cluster status: %v", err)
	}
	resp.Body.Close()
	if st.Self != self || len(st.Peers) != 1 || st.Replication != 1 {
		t.Errorf("cluster status = %+v, want self=%s peers=1 replication=1", st, self)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("shutdown hung with a cluster node attached")
	}
}
