package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"privcount/internal/service"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newMux(service.New(service.Config{Capacity: 32, Seed: 7})))
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (int, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", path, err)
	}
	return resp.StatusCode, out
}

func TestHealthAndStats(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	code, stats := post(t, ts, "/v1/sample", map[string]any{
		"mechanism": "em", "n": 8, "alpha": 0.8, "count": 3,
	})
	if code != http.StatusOK {
		t.Fatalf("sample status %d: %v", code, stats)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["entries"].(float64) != 1 {
		t.Errorf("stats entries = %v, want 1", st["entries"])
	}
}

func TestMechanismEndpoint(t *testing.T) {
	ts := testServer(t)
	code, out := post(t, ts, "/v1/mechanism", map[string]any{
		"mechanism": "choose", "n": 16, "alpha": 0.9, "properties": "F",
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if out["name"] != "EM" {
		t.Errorf("fairness request resolved to %v, want EM", out["name"])
	}
	if out["rule"] != "fairness => EM" {
		t.Errorf("rule = %v", out["rule"])
	}
	if out["debiasable"] != true {
		t.Errorf("EM should be debiasable")
	}
}

func TestSampleAndBatch(t *testing.T) {
	ts := testServer(t)
	spec := map[string]any{"mechanism": "gm", "n": 10, "alpha": 0.6}

	code, out := post(t, ts, "/v1/sample", merge(spec, map[string]any{"count": 4}))
	if code != http.StatusOK {
		t.Fatalf("sample status %d: %v", code, out)
	}
	v := out["output"].(float64)
	if v < 0 || v > 10 {
		t.Errorf("sample output %v out of range", v)
	}

	// A seeded batch must be reproducible call-to-call.
	req := merge(spec, map[string]any{"counts": []int{0, 5, 10, 3}, "seed": 99})
	code, first := post(t, ts, "/v1/batch", req)
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %v", code, first)
	}
	_, second := post(t, ts, "/v1/batch", req)
	a, b := first["outputs"].([]any), second["outputs"].([]any)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("batch lengths %d, %d; want 4", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("seeded batch not reproducible at %d: %v vs %v", i, a[i], b[i])
		}
	}

	// Unseeded batch works too.
	code, out = post(t, ts, "/v1/batch", merge(spec, map[string]any{"counts": []int{1, 2}}))
	if code != http.StatusOK {
		t.Fatalf("unseeded batch status %d: %v", code, out)
	}
}

func TestEstimateEndpoint(t *testing.T) {
	ts := testServer(t)
	code, out := post(t, ts, "/v1/estimate", map[string]any{
		"mechanism": "gm", "n": 10, "alpha": 0.6, "outputs": []int{4, 4, 4},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if out["unbiased"] != true {
		t.Error("GM estimate not unbiased")
	}
	if len(out["mle"].([]any)) != 3 {
		t.Errorf("mle = %v", out["mle"])
	}
}

func TestBadRequests(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		path string
		body map[string]any
	}{
		{"/v1/sample", map[string]any{"mechanism": "nope", "n": 8, "alpha": 0.5, "count": 1}},
		{"/v1/sample", map[string]any{"mechanism": "gm", "n": 8, "alpha": 1.5, "count": 1}},
		{"/v1/sample", map[string]any{"mechanism": "gm", "n": 8, "alpha": 0.5, "count": 11}},
		{"/v1/sample", map[string]any{"mechanism": "gm", "n": 8, "alpha": 0.5, "bogus": 1}},
		{"/v1/batch", map[string]any{"mechanism": "gm", "n": 8, "alpha": 0.5}},
		{"/v1/estimate", map[string]any{"mechanism": "gm", "n": 8, "alpha": 0.5, "outputs": []int{}}},
		{"/v1/mechanism", map[string]any{"mechanism": "gm", "n": 8, "alpha": 0.5, "properties": "XX"}},
	}
	for _, c := range cases {
		code, out := post(t, ts, c.path, c.body)
		if code != http.StatusBadRequest {
			t.Errorf("POST %s %v: status %d (%v), want 400", c.path, c.body, code, out)
		}
		if out["error"] == nil {
			t.Errorf("POST %s %v: missing error field", c.path, c.body)
		}
	}
}

func merge(a, b map[string]any) map[string]any {
	out := map[string]any{}
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}
