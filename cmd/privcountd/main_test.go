package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"privcount/internal/service"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{Capacity: 32, Seed: 7})
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(newMux(svc))
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (int, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", path, err)
	}
	return resp.StatusCode, out
}

func TestHealthAndStats(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	code, stats := post(t, ts, "/v1/sample", map[string]any{
		"mechanism": "em", "n": 8, "alpha": 0.8, "count": 3,
	})
	if code != http.StatusOK {
		t.Fatalf("sample status %d: %v", code, stats)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["entries"].(float64) != 1 {
		t.Errorf("stats entries = %v, want 1", st["entries"])
	}
}

func TestMechanismEndpoint(t *testing.T) {
	ts := testServer(t)
	code, out := post(t, ts, "/v1/mechanism", map[string]any{
		"mechanism": "choose", "n": 16, "alpha": 0.9, "properties": "F",
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if out["name"] != "EM" {
		t.Errorf("fairness request resolved to %v, want EM", out["name"])
	}
	if out["rule"] != "fairness => EM" {
		t.Errorf("rule = %v", out["rule"])
	}
	if out["debiasable"] != true {
		t.Errorf("EM should be debiasable")
	}
}

func TestSampleAndBatch(t *testing.T) {
	ts := testServer(t)
	spec := map[string]any{"mechanism": "gm", "n": 10, "alpha": 0.6}

	code, out := post(t, ts, "/v1/sample", merge(spec, map[string]any{"count": 4}))
	if code != http.StatusOK {
		t.Fatalf("sample status %d: %v", code, out)
	}
	v := out["output"].(float64)
	if v < 0 || v > 10 {
		t.Errorf("sample output %v out of range", v)
	}

	// A seeded batch must be reproducible call-to-call.
	req := merge(spec, map[string]any{"counts": []int{0, 5, 10, 3}, "seed": 99})
	code, first := post(t, ts, "/v1/batch", req)
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %v", code, first)
	}
	_, second := post(t, ts, "/v1/batch", req)
	a, b := first["outputs"].([]any), second["outputs"].([]any)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("batch lengths %d, %d; want 4", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("seeded batch not reproducible at %d: %v vs %v", i, a[i], b[i])
		}
	}

	// Unseeded batch works too.
	code, out = post(t, ts, "/v1/batch", merge(spec, map[string]any{"counts": []int{1, 2}}))
	if code != http.StatusOK {
		t.Fatalf("unseeded batch status %d: %v", code, out)
	}
}

func TestEstimateEndpoint(t *testing.T) {
	ts := testServer(t)
	code, out := post(t, ts, "/v1/estimate", map[string]any{
		"mechanism": "gm", "n": 10, "alpha": 0.6, "outputs": []int{4, 4, 4},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if out["unbiased"] != true {
		t.Error("GM estimate not unbiased")
	}
	if len(out["mle"].([]any)) != 3 {
		t.Errorf("mle = %v", out["mle"])
	}
}

func TestBadRequests(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		path string
		body map[string]any
	}{
		{"/v1/sample", map[string]any{"mechanism": "nope", "n": 8, "alpha": 0.5, "count": 1}},
		{"/v1/sample", map[string]any{"mechanism": "gm", "n": 8, "alpha": 1.5, "count": 1}},
		{"/v1/sample", map[string]any{"mechanism": "gm", "n": 8, "alpha": 0.5, "count": 11}},
		{"/v1/sample", map[string]any{"mechanism": "gm", "n": 8, "alpha": 0.5, "bogus": 1}},
		{"/v1/batch", map[string]any{"mechanism": "gm", "n": 8, "alpha": 0.5}},
		{"/v1/estimate", map[string]any{"mechanism": "gm", "n": 8, "alpha": 0.5, "outputs": []int{}}},
		{"/v1/mechanism", map[string]any{"mechanism": "gm", "n": 8, "alpha": 0.5, "properties": "XX"}},
	}
	for _, c := range cases {
		code, out := post(t, ts, c.path, c.body)
		if code != http.StatusBadRequest {
			t.Errorf("POST %s %v: status %d (%v), want 400", c.path, c.body, code, out)
		}
		if out["error"] == nil {
			t.Errorf("POST %s %v: missing error field", c.path, c.body)
		}
	}
}

// getJSON GETs path and decodes the JSON response.
func getJSON(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", path, err)
	}
	return resp.StatusCode, out
}

// TestAsyncMechanismAdmission drives the wait=false flow end to end:
// admission answers 202 with a build-status document, GET
// /v1/mechanism/status polls the build to ready, and a later synchronous
// request serves the cached mechanism instantly.
func TestAsyncMechanismAdmission(t *testing.T) {
	ts := testServer(t)
	body := map[string]any{
		"mechanism": "lp", "n": 8, "alpha": 0.7, "properties": "WH+S", "wait": false,
	}
	code, out := post(t, ts, "/v1/mechanism", body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("async admission status %d: %v", code, out)
	}
	if code == http.StatusAccepted {
		state, _ := out["state"].(string)
		if state != "pending" && state != "building" {
			t.Fatalf("202 document state = %q, want pending/building: %v", state, out)
		}
	}

	statusPath := "/v1/mechanism/status?" + url.Values{
		"mechanism":  {"lp"},
		"n":          {"8"},
		"alpha":      {"0.7"},
		"properties": {"WH+S"},
	}.Encode()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, st := getJSON(t, ts, statusPath)
		if code != http.StatusOK {
			t.Fatalf("status poll returned %d: %v", code, st)
		}
		if st["state"] == "ready" {
			if sec, ok := st["build_seconds"].(float64); !ok || sec < 0 {
				t.Errorf("ready status build_seconds = %v", st["build_seconds"])
			}
			break
		}
		if st["state"] == "failed" {
			t.Fatalf("async build failed: %v", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("build never became ready: %v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The mechanism now serves synchronously from cache (wait defaulted).
	delete(body, "wait")
	code, out = post(t, ts, "/v1/mechanism", body)
	if code != http.StatusOK {
		t.Fatalf("post-build mechanism status %d: %v", code, out)
	}
	if out["name"] == nil || out["rule"] == nil {
		t.Fatalf("mechanism document incomplete: %v", out)
	}
	// wait=false on a ready spec skips the 202 and returns the document.
	body["wait"] = false
	code, out = post(t, ts, "/v1/mechanism", body)
	if code != http.StatusOK || out["name"] == nil {
		t.Fatalf("wait=false on ready spec: %d %v", code, out)
	}
}

// TestMechanismStatusErrors pins the status endpoint's error surface:
// never-admitted specs 404 with an error body, malformed queries 400.
func TestMechanismStatusErrors(t *testing.T) {
	ts := testServer(t)
	code, out := getJSON(t, ts, "/v1/mechanism/status?mechanism=gm&n=9&alpha=0.5")
	if code != http.StatusNotFound {
		t.Fatalf("unadmitted status = %d, want 404: %v", code, out)
	}
	if out["state"] != "absent" || out["error"] == nil {
		t.Fatalf("404 body = %v, want state=absent with error", out)
	}
	for _, q := range []string{
		"mechanism=gm&n=bogus&alpha=0.5",
		"mechanism=gm&n=9&alpha=bogus",
		"mechanism=nope&n=9&alpha=0.5",
		"mechanism=gm&n=9&alpha=0.5&objective_p=x",
		"mechanism=gm&n=0&alpha=0.5",
	} {
		code, out := getJSON(t, ts, "/v1/mechanism/status?"+q)
		if code != http.StatusBadRequest || out["error"] == nil {
			t.Errorf("query %q: status %d body %v, want 400 with error", q, code, out)
		}
	}
}

// TestStatsReportBuildPipeline checks the stats document carries the
// build-pipeline gauges the ops runbook polls.
func TestStatsReportBuildPipeline(t *testing.T) {
	ts := testServer(t)
	if code, out := post(t, ts, "/v1/sample", map[string]any{
		"mechanism": "gm", "n": 8, "alpha": 0.5, "count": 1,
	}); code != http.StatusOK {
		t.Fatalf("sample: %d %v", code, out)
	}
	code, st := getJSON(t, ts, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	for _, key := range []string{"build_queue_depth", "builds_in_flight", "builds", "build_failures", "build_cancels", "build_seconds"} {
		if _, ok := st[key]; !ok {
			t.Errorf("stats missing %q: %v", key, st)
		}
	}
	if st["builds"].(float64) < 1 {
		t.Errorf("builds = %v after a successful sample", st["builds"])
	}
}

// TestGracefulShutdownDrains boots the real server loop, serves a
// request, then delivers the signal-context cancellation and checks run
// returns cleanly — listener closed, build workers joined — within the
// shutdown grace. Run under -race this is the shutdown leak test.
func TestGracefulShutdownDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, "127.0.0.1:0", service.Config{Capacity: 16, Seed: 3}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Post("http://"+addr+"/v1/sample", "application/json",
		bytes.NewReader([]byte(`{"mechanism":"gm","n":8,"alpha":0.5,"count":2}`)))
	if err != nil {
		t.Fatalf("request against live server: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample status %d", resp.StatusCode)
	}
	// Park a slow detached build so shutdown has something in flight to
	// cancel (n=96 exceeds the old sync cap; a cold solve runs far
	// beyond this test, so a timely exit proves the drain cancelled it).
	resp, err = http.Post("http://"+addr+"/v1/mechanism", "application/json",
		bytes.NewReader([]byte(`{"mechanism":"lp-minimax","n":96,"alpha":0.9,"wait":false}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async admission status %d, want 202", resp.StatusCode)
	}

	cancel() // what SIGTERM does in main
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(shutdownGrace + 30*time.Second):
		t.Fatal("run did not return after shutdown signal")
	}
	// The listener is gone.
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

func merge(a, b map[string]any) map[string]any {
	out := map[string]any{}
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}
