package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"privcount/internal/service"
)

// The handler-level suite lives with the handlers in
// internal/httpapi; this package tests the daemon wiring (newMux, the
// run lifecycle) plus the cross-version guarantees in v2_test.go.

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{Capacity: 32, Seed: 7})
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(newMux(svc))
	t.Cleanup(ts.Close)
	return ts
}

// TestGracefulShutdownDrains boots the real server loop, serves a
// request, then delivers the signal-context cancellation and checks run
// returns cleanly — listener closed, build workers joined — within the
// shutdown grace. Run under -race this is the shutdown leak test.
func TestGracefulShutdownDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, "127.0.0.1:0", service.Config{Capacity: 16, Seed: 3}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Post("http://"+addr+"/v2/query", "application/json",
		bytes.NewReader([]byte(`{"ops":[{"op":"sample","id":"gm:n=8:a=0.5","count":2}]}`)))
	if err != nil {
		t.Fatalf("request against live server: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample status %d", resp.StatusCode)
	}
	// Park a slow detached build so shutdown has something in flight to
	// cancel (a cold n=96 minimax solve runs far beyond this test, so a
	// timely exit proves the drain cancelled it). PUT admission is
	// detached exactly like the old wait=false flow.
	req, err := http.NewRequest(http.MethodPut,
		"http://"+addr+"/v2/mechanisms/lp-minimax:n=96:a=0.9:none:p=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async admission status %d, want 202", resp.StatusCode)
	}

	cancel() // what SIGTERM does in main
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(shutdownGrace + 30*time.Second):
		t.Fatal("run did not return after shutdown signal")
	}
	// The listener is gone.
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}
