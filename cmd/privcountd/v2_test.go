package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"privcount/client"
)

// doReq performs one request with an optional JSON body and decodes the
// JSON response generically.
func doReq(t *testing.T, ts, method, path string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, ts+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s %s response: %v", method, path, err)
	}
	return resp, out
}

// waitReadyV2 polls GET /v2/mechanisms/{id} until the build settles.
func waitReadyV2(t *testing.T, ts, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, doc := doReq(t, ts, http.MethodGet, "/v2/mechanisms/"+url.PathEscape(id), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status poll for %s returned %d: %v", id, resp.StatusCode, doc)
		}
		switch doc["state"] {
		case "ready":
			return doc
		case "failed":
			t.Fatalf("build of %s failed: %v", id, doc)
		}
		if time.Now().After(deadline) {
			t.Fatalf("build of %s never became ready: %v", id, doc)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestV1RetiredAtDaemon pins the daemon wiring's side of the v1
// retirement: every old route answers 410 Gone with the taxonomy "gone"
// envelope and a successor Link, and the equivalent v2 call succeeds on
// the same server. (The full route-by-route matrix lives with the
// handlers in internal/httpapi; this guards the newMux wiring.)
func TestV1RetiredAtDaemon(t *testing.T) {
	ts := testServer(t)

	for _, path := range []string{"/v1/sample", "/v1/batch", "/v1/estimate",
		"/v1/mechanism", "/v1/mechanism/status", "/v1/stats"} {
		resp, doc := doReq(t, ts.URL, http.MethodPost, path,
			map[string]any{"mechanism": "gm", "n": 10, "alpha": 0.6, "count": 2})
		if resp.StatusCode != http.StatusGone {
			t.Fatalf("%s: status %d, want 410 (%v)", path, resp.StatusCode, doc)
		}
		env, _ := doc["error"].(map[string]any)
		if env == nil || env["code"] != string(client.CodeGone) {
			t.Errorf("%s: envelope %v, want code %q", path, doc, client.CodeGone)
		}
		if !strings.Contains(resp.Header.Get("Link"), `rel="successor-version"`) {
			t.Errorf("%s: missing successor Link header: %q", path, resp.Header.Get("Link"))
		}
		// v2 does not inherit the tombstone headers.
	}

	// The successor surface serves the migrated workload on this server.
	seed := uint64(7)
	resp, out := doReq(t, ts.URL, http.MethodPost, "/v2/query", client.QueryRequest{Ops: []client.Op{
		{Op: "batch", ID: "gm:n=10:a=0.6", Counts: []int{0, 5, 10, 3}, Seed: &seed},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v2 query: %d %v", resp.StatusCode, out)
	}
	if resp.Header.Get("Link") != "" {
		t.Error("v2 response carries a tombstone Link header")
	}
}

// ---- golden wire fixtures ----

var update = flag.Bool("update", false, "rewrite golden wire fixtures")

// goldenCase is one recorded request/response exchange. Pre, when set,
// is a mechanism id PUT (unrecorded) immediately before the case's own
// request — it lets a case observe a build that was just admitted, e.g.
// the not_ready artifact export of a slow LP solve.
type goldenCase struct {
	Name     string          `json:"name"`
	Method   string          `json:"method"`
	Path     string          `json:"path"`
	Pre      string          `json:"pre,omitempty"`
	Body     json.RawMessage `json:"body,omitempty"`
	Status   int             `json:"status"`
	Response json.RawMessage `json:"response"`
}

// scrubVolatile zeroes fields whose values depend on wall time so the
// fixtures pin protocol shape and deterministic payloads only.
func scrubVolatile(v any) any {
	switch x := v.(type) {
	case map[string]any:
		for k, vv := range x {
			if k == "build_seconds" {
				x[k] = 0.0
				continue
			}
			x[k] = scrubVolatile(vv)
		}
		return x
	case []any:
		for i, vv := range x {
			x[i] = scrubVolatile(vv)
		}
		return x
	default:
		return v
	}
}

// canonicalJSON re-marshals with sorted keys for comparison.
func canonicalJSON(t *testing.T, raw []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("canonicalising %s: %v", raw, err)
	}
	b, err := json.MarshalIndent(scrubVolatile(v), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestV2GoldenWire replays the recorded v2 exchanges against a seeded
// server and requires byte-identical (canonicalised, volatility-
// scrubbed) protocol output, pinning the request/response and
// error-taxonomy JSON against silent drift. Run with -update after an
// intentional protocol change.
func TestV2GoldenWire(t *testing.T) {
	ts := testServer(t)
	// Warm the one mechanism the fixtures rely on, so every recorded
	// exchange is deterministic (em is closed-form: instant build).
	waitReadyV2(t, ts.URL, mustPutV2(t, ts.URL, "em:n=8:a=0.8"))

	path := filepath.Join("testdata", "v2_wire.json")
	raw, err := os.ReadFile(path)
	if err != nil && !*update {
		t.Fatalf("reading fixtures (run with -update to record): %v", err)
	}
	var cases []goldenCase
	if err == nil {
		if err := json.Unmarshal(raw, &cases); err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
	}
	if *update {
		cases = goldenScript()
	}

	for i := range cases {
		c := &cases[i]
		t.Run(c.Name, func(t *testing.T) {
			if c.Pre != "" {
				mustPutV2(t, ts.URL, c.Pre)
			}
			var body io.Reader = bytes.NewReader(nil)
			if len(c.Body) > 0 {
				body = bytes.NewReader(c.Body)
			}
			req, err := http.NewRequest(c.Method, ts.URL+c.Path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if *update {
				c.Status = resp.StatusCode
				c.Response = json.RawMessage(canonicalJSON(t, got))
				return
			}
			if resp.StatusCode != c.Status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, c.Status, got)
			}
			if g, w := canonicalJSON(t, got), canonicalJSON(t, c.Response); g != w {
				t.Errorf("wire drift on %s %s:\n got: %s\nwant: %s", c.Method, c.Path, g, w)
			}
		})
	}

	if *update {
		b, err := json.MarshalIndent(cases, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cases", path, len(cases))
	}
}

// mustPutV2 PUTs the id and returns it.
func mustPutV2(t *testing.T, ts, id string) string {
	t.Helper()
	resp, doc := doReq(t, ts, http.MethodPut, "/v2/mechanisms/"+url.PathEscape(id), nil)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT %s: %d %v", id, resp.StatusCode, doc)
	}
	return id
}

// goldenScript is the protocol surface the fixtures record: resource
// reads, deterministic query ops, and every reachable error envelope.
func goldenScript() []goldenCase {
	q := func(v any) json.RawMessage {
		b, _ := json.Marshal(v)
		return b
	}
	seed := uint64(99)
	return []goldenCase{
		{Name: "get_ready_mechanism", Method: "GET", Path: "/v2/mechanisms/em:n=8:a=0.8"},
		{Name: "get_equivalent_id", Method: "GET", Path: "/v2/mechanisms/em:n=8:a=0.80:WH"},
		{Name: "put_ready_mechanism", Method: "PUT", Path: "/v2/mechanisms/em:n=8:a=0.8"},
		{Name: "list_mechanisms", Method: "GET", Path: "/v2/mechanisms"},
		{Name: "query_seeded_batch_and_estimate", Method: "POST", Path: "/v2/query",
			Body: q(client.QueryRequest{Ops: []client.Op{
				{Op: "batch", ID: "em:n=8:a=0.8", Counts: []int{0, 4, 8}, Seed: &seed},
				{Op: "estimate", ID: "em:n=8:a=0.8", Outputs: []int{4, 4, 4}},
			}})},
		{Name: "query_per_op_errors", Method: "POST", Path: "/v2/query",
			Body: q(client.QueryRequest{Ops: []client.Op{
				{Op: "sample", ID: "em:n=8:a=0.8", Count: 99},
				{Op: "transmogrify", ID: "em:n=8:a=0.8"},
				{Op: "sample", ID: "not-a-kind:n=8", Count: 1},
			}})},
		{Name: "error_not_admitted", Method: "GET", Path: "/v2/mechanisms/gm:n=11:a=0.5"},
		{Name: "error_artifact_not_admitted", Method: "GET", Path: "/v2/mechanisms/gm:n=13:a=0.5/artifact"},
		{Name: "error_artifact_invalid", Method: "PUT", Path: "/v2/mechanisms/em:n=8:a=0.8/artifact",
			Body: q("not a mechanism artifact")},
		// The n=256 LP solve takes seconds; the export lands while the
		// build the Pre step just admitted is still in flight.
		{Name: "error_artifact_not_ready", Method: "GET", Path: "/v2/mechanisms/lp:n=256:a=0.5:WH+CM:p=0/artifact",
			Pre: "lp:n=256:a=0.5:WH+CM:p=0"},
		{Name: "error_spec_invalid", Method: "PUT", Path: "/v2/mechanisms/em:n=8:a=1.5"},
		{Name: "error_over_limit", Method: "PUT", Path: "/v2/mechanisms/lp-minimax:n=512:a=0.5:none:p=0"},
		{Name: "error_empty_ops", Method: "POST", Path: "/v2/query", Body: q(client.QueryRequest{})},
		{Name: "error_malformed_body", Method: "POST", Path: "/v2/query", Body: json.RawMessage(`{"ops": 3}`)},
	}
}
