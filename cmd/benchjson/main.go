// Command benchjson converts `go test -bench` output into a stable JSON
// artifact and gates benchmark regressions against a committed baseline.
// CI uses it twice per benchmark group: once to publish BENCH_*.json
// artifacts, once to fail the build when a benchmark regresses more than
// the threshold against the baseline checked in under .github/bench/.
//
// Usage:
//
//	go test ./internal/lp/ -run '^$' -bench . | benchjson -o BENCH_lp.json
//	benchjson -o merged.json lp.txt root.txt        # merge several runs
//	benchjson -baseline .github/bench/BENCH_lp.json -max-regress 0.30 lp.txt
//
// The JSON maps benchmark name (with the -cpuCount suffix stripped) to
// {"ns_op": …, "allocs_op": …, "bytes_op": …}. Comparison checks ns/op
// and allocs/op; benchmarks present only on one side are reported but do
// not fail the gate, so adding or retiring benchmarks does not require a
// lockstep baseline update.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Result is one benchmark's measurements. Iterations is go test's b.N:
// a run that managed only one iteration inside -benchtime is a single
// sample, too noisy to gate on (it is still published in the artifact).
type Result struct {
	NsOp       float64 `json:"ns_op"`
	AllocsOp   float64 `json:"allocs_op,omitempty"`
	BytesOp    float64 `json:"bytes_op,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
}

// benchLine matches e.g.
// BenchmarkFoo-8   123   9876 ns/op   456 B/op   7 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func parse(r io.Reader, into map[string]Result) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		res := Result{}
		res.Iterations, _ = strconv.Atoi(m[2])
		res.NsOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			res.BytesOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			res.AllocsOp, _ = strconv.ParseFloat(m[5], 64)
		}
		into[m[1]] = res
	}
	return sc.Err()
}

func main() {
	var (
		out        = flag.String("o", "", "write merged JSON to this file (default stdout when no -baseline)")
		baseline   = flag.String("baseline", "", "baseline JSON to compare against; exits 1 on regression")
		maxRegress = flag.Float64("max-regress", 0.30, "allowed fractional regression vs baseline (0.30 = +30%)")
	)
	flag.Parse()

	results := map[string]Result{}
	if flag.NArg() == 0 {
		if err := parse(os.Stdin, results); err != nil {
			fatal(err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		err = parse(f, results)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *out != "" || *baseline == "" {
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if *out == "" || *out == "-" {
			os.Stdout.Write(buf)
		} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatal(err)
		}
	}

	if *baseline == "" {
		return
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fatal(err)
	}
	base := map[string]Result{}
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parse baseline %s: %w", *baseline, err))
	}

	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	for _, name := range names {
		cur := results[name]
		b, ok := base[name]
		if !ok {
			fmt.Printf("new       %-40s %12.0f ns/op (no baseline)\n", name, cur.NsOp)
			continue
		}
		// A single-iteration measurement is one noisy sample — wall-clock
		// guards in the test suite cover the heavy paths; don't let one
		// slow shared-runner sample fail the gate. But a benchmark whose
		// baseline had enough samples and now runs so slowly it cannot
		// collect them is itself the regression signal: gate it at twice
		// the threshold so noise still gets the benefit of the doubt.
		if cur.Iterations < minGateIters {
			if b.Iterations >= minGateIters && b.NsOp > 0 && cur.NsOp > b.NsOp*(1+2*(*maxRegress)) {
				regressions = append(regressions, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%; fell below %d iterations)",
					name, b.NsOp, cur.NsOp, pct(cur.NsOp, b.NsOp), minGateIters))
				fmt.Printf("REGRESSED %-40s %12.0f ns/op (baseline %.0f, %+.1f%%; sample count collapsed)\n",
					name, cur.NsOp, b.NsOp, pct(cur.NsOp, b.NsOp))
				continue
			}
			fmt.Printf("1-shot    %-40s %12.0f ns/op (baseline %.0f, %+.1f%%; too few iterations to gate)\n",
				name, cur.NsOp, b.NsOp, pct(cur.NsOp, b.NsOp))
			continue
		}
		status := "ok"
		if b.NsOp > 0 && cur.NsOp > b.NsOp*(1+*maxRegress) {
			status = "REGRESSED"
			regressions = append(regressions, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)",
				name, b.NsOp, cur.NsOp, 100*(cur.NsOp/b.NsOp-1)))
		}
		if b.AllocsOp > 0 && cur.AllocsOp > b.AllocsOp*(1+*maxRegress) {
			status = "REGRESSED"
			regressions = append(regressions, fmt.Sprintf("%s: %.1f -> %.1f allocs/op (%+.1f%%)",
				name, b.AllocsOp, cur.AllocsOp, 100*(cur.AllocsOp/b.AllocsOp-1)))
		}
		fmt.Printf("%-9s %-40s %12.0f ns/op (baseline %.0f, %+.1f%%)\n",
			status, name, cur.NsOp, b.NsOp, pct(cur.NsOp, b.NsOp))
	}
	for name := range base {
		if _, ok := results[name]; !ok {
			fmt.Printf("missing   %-40s (in baseline, not in run)\n", name)
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchjson: %d regression(s) beyond %.0f%%:\n", len(regressions), *maxRegress*100)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
}

// minGateIters is the fewest b.N iterations a measurement needs before
// the regression gate trusts it.
const minGateIters = 3

func pct(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (cur/base - 1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
