// Command experiment reproduces the paper's tables and figures. Each
// figure prints its data series as TSV plus annotations; heatmap figures
// print ASCII heatmaps.
//
// Usage:
//
//	experiment -list
//	experiment -figure fig9
//	experiment -figure all -quick
//	experiment -figure fig10 -adult /data/adult.data
//	experiment -figure fig7 -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"privcount/internal/figures"
	"privcount/internal/heatmap"
	"privcount/internal/mat"
)

func main() {
	var (
		figureID = flag.String("figure", "", "figure to reproduce (see -list), or 'all'")
		list     = flag.Bool("list", false, "list available figures")
		quick    = flag.Bool("quick", false, "trim sweeps and repetitions for a fast pass")
		seed     = flag.Uint64("seed", 1, "master random seed")
		outDir   = flag.String("out", "", "directory to write per-figure TSV files (optional)")
		adult    = flag.String("adult", "", "path to a real UCI adult.data file for fig10 (default: calibrated synthetic records)")
	)
	flag.Parse()

	if *list || *figureID == "" {
		titles := figures.Titles()
		fmt.Println("available figures:")
		for _, id := range figures.IDs() {
			fmt.Printf("  %-12s %s\n", id, titles[id])
		}
		if *figureID == "" && !*list {
			fmt.Println("\nselect one with -figure <id> (or -figure all)")
		}
		return
	}

	opts := figures.Options{Quick: *quick, Seed: *seed, AdultPath: *adult}
	var figs []*figures.Figure
	if *figureID == "all" {
		all, err := figures.BuildAll(opts)
		if err != nil {
			fatal(err)
		}
		figs = all
	} else {
		f, err := figures.Build(*figureID, opts)
		if err != nil {
			fatal(err)
		}
		figs = []*figures.Figure{f}
	}

	for _, f := range figs {
		printFigure(f)
		if *outDir != "" {
			if err := writeFigure(*outDir, f); err != nil {
				fatal(err)
			}
		}
	}
}

func printFigure(f *figures.Figure) {
	fmt.Printf("==== %s: %s ====\n", f.ID, f.Title)
	if len(f.Heatmaps) > 0 {
		labels := make([]string, len(f.Heatmaps))
		ms := make([]*mat.Dense, len(f.Heatmaps))
		for i, h := range f.Heatmaps {
			labels[i] = h.Label
			ms[i] = h.M
		}
		fmt.Println(heatmap.SideBySide(labels, ms))
	}
	for _, t := range f.Tables {
		if err := t.WriteTSV(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	for _, n := range f.Notes {
		fmt.Println("  *", n)
	}
	fmt.Println()
}

func writeFigure(dir string, f *figures.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range f.Tables {
		name := fmt.Sprintf("%s_%d.tsv", f.ID, i)
		if len(f.Tables) == 1 {
			name = f.ID + ".tsv"
		}
		file, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := t.WriteTSV(file); err != nil {
			file.Close()
			return err
		}
		if err := file.Close(); err != nil {
			return err
		}
	}
	for _, h := range f.Heatmaps {
		safe := strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
				return r
			default:
				return '_'
			}
		}, h.Label)
		file, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s_%s.pgm", f.ID, safe)))
		if err != nil {
			return err
		}
		if err := heatmap.WritePGM(file, h.M, 24); err != nil {
			file.Close()
			return err
		}
		if err := file.Close(); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiment:", err)
	os.Exit(1)
}
