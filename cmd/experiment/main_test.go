package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privcount/internal/figures"
)

func TestWriteFigureProducesArtifacts(t *testing.T) {
	f, err := figures.Build("fig7", figures.Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := writeFigure(dir, f); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var pgm int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".pgm") {
			pgm++
		}
	}
	if pgm != 3 {
		t.Fatalf("want 3 PGM heatmaps for fig7, got %d (%v)", pgm, entries)
	}
}

func TestWriteFigureTSVNaming(t *testing.T) {
	f, err := figures.Build("fig9", figures.Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := writeFigure(dir, f); err != nil {
		t.Fatal(err)
	}
	// fig9 has three tables -> numbered files.
	for i := 0; i < 3; i++ {
		path := filepath.Join(dir, "fig9_"+string(rune('0'+i))+".tsv")
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing %s: %v", path, err)
		}
		if !strings.Contains(string(b), "GM") {
			t.Errorf("%s missing GM column", path)
		}
	}
}
