package main

import (
	"strings"
	"testing"
)

func TestBuildKnownMechanisms(t *testing.T) {
	for _, mech := range []string{"gm", "em", "um", "wm", "krr", "exp", "lap"} {
		m, err := build(mech, 5, 0.8, "", 0)
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if m.N() != 5 {
			t.Errorf("%s: n = %d", mech, m.N())
		}
	}
}

func TestBuildLPWithProps(t *testing.T) {
	m, err := build("lp", 4, 0.9, "WH+CM+S", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.SatisfiesDP(0.9, 1e-7) {
		t.Error("LP mechanism violates DP")
	}
}

func TestBuildChoose(t *testing.T) {
	m, err := build("choose", 4, 0.9, "F", 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "EM" {
		t.Errorf("choose F should yield EM, got %s", m.Name())
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build("nope", 4, 0.9, "", 0); err == nil {
		t.Error("unknown mechanism accepted")
	}
	if _, err := build("lp", 4, 0.9, "BAD", 0); err == nil {
		t.Error("bad property string accepted")
	}
	if _, err := build("gm", 0, 0.9, "", 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestBuildErrorsMentionValidChoices(t *testing.T) {
	_, err := build("nope", 4, 0.9, "", 0)
	if err == nil || !strings.Contains(err.Error(), "gm|em|um") {
		t.Errorf("error should list valid mechanisms: %v", err)
	}
}
