// Command mechgen constructs differentially private count mechanisms and
// prints their matrices, heatmaps, properties, and accuracy scores.
//
// Usage:
//
//	mechgen -n 8 -alpha 0.9 -mech em -heatmap
//	mechgen -n 6 -alpha 0.76 -mech lp -props WH+CM
//	mechgen -n 4 -alpha 0.9 -mech choose -props F -pgm out.pgm
//
// Mechanisms: gm (geometric), em (explicit fair), um (uniform), wm
// (weak-honesty LP), krr, exp (exponential), lap (truncated Laplace),
// lp (solve LP with -props), choose (Figure 5 decision procedure).
package main

import (
	"flag"
	"fmt"
	"os"

	"privcount/internal/core"
	"privcount/internal/design"
	"privcount/internal/heatmap"
)

func main() {
	var (
		n        = flag.Int("n", 8, "group size (outputs range over 0..n)")
		alpha    = flag.Float64("alpha", 0.9, "privacy parameter in (0,1); closer to 1 is more private")
		mech     = flag.String("mech", "gm", "mechanism: gm|em|um|wm|krr|exp|lap|lp|choose")
		props    = flag.String("props", "", "structural properties for -mech lp/choose, e.g. WH+CM or all")
		objP     = flag.Float64("p", 0, "objective exponent p for -mech lp (0 = L0)")
		showMap  = flag.Bool("heatmap", false, "print an ASCII heatmap")
		showMat  = flag.Bool("matrix", true, "print the probability matrix")
		pgmPath  = flag.String("pgm", "", "also write a PGM heatmap image to this path")
		pgmScale = flag.Int("pgm-scale", 24, "pixels per matrix cell in the PGM image")
	)
	flag.Parse()

	m, err := build(*mech, *n, *alpha, *props, *objP)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mechgen:", err)
		os.Exit(1)
	}

	fmt.Printf("%s  n=%d  alpha=%.4g\n", m.Name(), m.N(), *alpha)
	if *showMat {
		fmt.Println(m.Matrix())
	}
	if *showMap {
		fmt.Println(heatmap.ASCII(m.Matrix()))
	}

	fmt.Printf("satisfies alpha-DP:  %v (tightest alpha %.4f)\n", m.SatisfiesDP(*alpha, 0), m.DPAlpha())
	fmt.Printf("properties:          %s\n", core.PropertySetString(m.SatisfiedProperties(1e-7)))
	tp, err := m.TruthProb(nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mechgen:", err)
		os.Exit(1)
	}
	l1, _ := m.ExpectedAbsError(nil)
	rmse, _ := m.RMSE(nil)
	fmt.Printf("L0 (rescaled):       %.6f\n", m.L0())
	fmt.Printf("truth probability:   %.6f (uniform guessing: %.6f)\n", tp, 1/float64(m.N()+1))
	fmt.Printf("expected |error|:    %.6f\n", l1)
	fmt.Printf("RMSE:                %.6f\n", rmse)
	if gaps := m.Gaps(0); len(gaps) > 0 {
		fmt.Printf("WARNING: gaps (outputs never reported): %v\n", gaps)
	}

	if *pgmPath != "" {
		f, err := os.Create(*pgmPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mechgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := heatmap.WritePGM(f, m.Matrix(), *pgmScale); err != nil {
			fmt.Fprintln(os.Stderr, "mechgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote heatmap image: %s\n", *pgmPath)
	}
}

func build(mech string, n int, alpha float64, propsStr string, p float64) (*core.Mechanism, error) {
	switch mech {
	case "gm":
		return core.Geometric(n, alpha)
	case "em":
		return core.ExplicitFair(n, alpha)
	case "um":
		return core.Uniform(n)
	case "wm":
		return design.WM(n, alpha)
	case "krr":
		return core.KRR(n, alpha)
	case "exp":
		return core.Exponential(n, alpha, nil)
	case "lap":
		return core.TruncatedLaplace(n, alpha)
	case "lp":
		props, err := core.ParseProperties(propsStr)
		if err != nil {
			return nil, err
		}
		r, err := design.Solve(design.Problem{
			N: n, Alpha: alpha, Props: props,
			Objective:      design.Objective{P: p},
			ReduceSymmetry: props&core.Symmetry != 0,
		})
		if err != nil {
			return nil, err
		}
		return r.Mechanism, nil
	case "choose":
		props, err := core.ParseProperties(propsStr)
		if err != nil {
			return nil, err
		}
		choice, err := design.Choose(n, alpha, props)
		if err != nil {
			return nil, err
		}
		fmt.Printf("decision: %s\n", choice.Rule)
		return choice.Mechanism, nil
	default:
		return nil, fmt.Errorf("unknown mechanism %q (want gm|em|um|wm|krr|exp|lap|lp|choose)", mech)
	}
}
