// Package privcount implements constrained differentially private
// mechanisms for count queries, reproducing "Constrained Private
// Mechanisms for Count Data" (Cormode, Kulkarni, Srivastava; ICDE 2018).
//
// A group of n individuals each holds one private bit; a trusted
// aggregator releases a noisy version of the bit-sum, constrained to the
// same range {0..n}. A mechanism is an (n+1)×(n+1) column-stochastic
// matrix P with P[i][j] = Pr[output=i | true count=j], required to
// satisfy α-differential privacy: α ≤ P[i][j]/P[i][j±1] ≤ 1/α.
//
// The package provides:
//
//   - the explicit mechanisms of the paper: the truncated Geometric
//     mechanism (NewGeometric), the novel Explicit Fair mechanism
//     (NewExplicitFair), the Uniform mechanism (NewUniform), and the
//     §II-B comparators (randomized response, k-ary randomized response,
//     exponential and truncated-Laplace mechanisms);
//
//   - the seven structural properties of §IV-A (row/column honesty and
//     monotonicity, fairness, weak honesty, symmetry) as checkable and
//     enforceable constraints;
//
//   - LP-based constrained mechanism design (Design, WM) on a built-in
//     simplex solver — any combination of properties, any O_{p,Σ}
//     objective;
//
//   - the Figure 5 decision procedure (Choose) that picks among GM, EM
//     and the two LP behaviours for a requested property set;
//
//   - sampling (NewSampler), estimation (MLE tables, unbiased
//     debiasing), workload generators (Binomial populations, an
//     Adult-census workload), and an experiment harness with error bars;
//
//   - a concurrent serving layer (NewService) that caches constructed
//     mechanisms with precomputed sampling and estimation tables and
//     serves Sample/SampleBatch/Estimate traffic from many goroutines —
//     cmd/privcountd exposes it over HTTP/JSON, with mechanisms named
//     by their canonical spec token (Spec.ID, ParseSpec) and a typed
//     Go SDK in package privcount/client.
//
// # Quick start
//
//	em, err := privcount.NewExplicitFair(8, 0.9) // n=8 people, alpha=0.9
//	if err != nil { ... }
//	sampler, err := privcount.NewSampler(em)
//	noisy := sampler.Sample(privcount.NewRand(1), trueCount)
//
// See examples/ for runnable programs and DESIGN.md for the mapping from
// paper artefacts to code.
package privcount

import (
	"context"

	"privcount/internal/core"
	"privcount/internal/design"
	"privcount/internal/mat"
	"privcount/internal/rng"
	"privcount/internal/service"
)

// Mechanism is a randomized mechanism for count queries over {0..n}: a
// column-stochastic (n+1)×(n+1) probability matrix. See the core
// methods: Prob, SatisfiesDP, L0, Check, Sample (via Sampler), and the
// estimator helpers.
type Mechanism = core.Mechanism

// Matrix is the dense matrix type underlying mechanisms.
type Matrix = mat.Dense

// Property identifies one structural property from §IV-A of the paper;
// properties combine into a PropertySet bitmask.
type Property = core.Property

// PropertySet is a bitmask of Properties.
type PropertySet = core.PropertySet

// The structural properties of §IV-A, plus the OutputDP extension from
// the paper's concluding remarks.
const (
	// RowHonesty: Pr[i|i] ≥ Pr[i|j] for every output i and input j.
	RowHonesty = core.RowHonesty
	// RowMonotone: row entries fall moving away from the diagonal.
	RowMonotone = core.RowMonotone
	// ColumnHonesty: the truth is the likeliest single output.
	ColumnHonesty = core.ColumnHonesty
	// ColumnMonotone: outputs nearer the truth are likelier.
	ColumnMonotone = core.ColumnMonotone
	// Fairness: the truth probability is the same for every input.
	Fairness = core.Fairness
	// WeakHonesty: the truth is at least as likely as uniform guessing.
	WeakHonesty = core.WeakHonesty
	// Symmetry: Pr[i|j] = Pr[n−i|n−j].
	Symmetry = core.Symmetry
	// OutputDP: the DP ratio bound applied between neighbouring outputs.
	OutputDP = core.OutputDP
)

// AllProperties is the full set of the paper's seven properties.
const AllProperties = core.AllProperties

// NewGeometric returns the truncated Geometric mechanism GM
// (Definition 4): two-sided geometric noise clamped to [0, n]. GM is the
// unique L0-optimal mechanism under the basic DP constraints (Theorem 3)
// but concentrates probability on the extreme outputs.
func NewGeometric(n int, alpha float64) (*Mechanism, error) {
	return core.Geometric(n, alpha)
}

// NewExplicitFair returns the paper's novel explicit fair mechanism EM
// (Eq 16): L0-optimal among mechanisms satisfying all seven structural
// properties (Theorem 4), at a cost only ≈ (n+1)/n times GM's.
func NewExplicitFair(n int, alpha float64) (*Mechanism, error) {
	return core.ExplicitFair(n, alpha)
}

// NewUniform returns the uniform mechanism UM (Definition 5), which
// ignores its input; it is the trivial baseline with rescaled L0 cost 1.
func NewUniform(n int) (*Mechanism, error) {
	return core.Uniform(n)
}

// NewRandomizedResponse returns classic one-bit randomized response — the
// n = 1 case, where it is the unique optimal mechanism.
func NewRandomizedResponse(alpha float64) (*Mechanism, error) {
	return core.RandomizedResponse(alpha)
}

// NewKRR returns Geng et al.'s k-ary randomized response over n+1
// outputs: truth with probability 1/(1+nα), otherwise uniform.
func NewKRR(n int, alpha float64) (*Mechanism, error) {
	return core.KRR(n, alpha)
}

// NewExponential returns the McSherry–Talwar exponential mechanism for
// count queries with the given quality function (nil selects −|i−j|).
func NewExponential(n int, alpha float64, quality func(input, output int) float64) (*Mechanism, error) {
	return core.Exponential(n, alpha, quality)
}

// NewTruncatedLaplace returns the rounded-and-truncated continuous
// Laplace mechanism, the discrete-domain adaptation discussed in §II-B.
func NewTruncatedLaplace(n int, alpha float64) (*Mechanism, error) {
	return core.TruncatedLaplace(n, alpha)
}

// FromMatrix wraps a user-supplied column-stochastic matrix as a
// Mechanism after validation. alpha records the intended privacy level
// (verify with SatisfiesDP).
func FromMatrix(name string, n int, alpha float64, m *Matrix) (*Mechanism, error) {
	return core.New(name, n, alpha, m)
}

// Symmetrize applies Theorem 1: it returns the centro-symmetric average
// ½(M + Mˢ), preserving differential privacy, every §IV-A property, and
// the L0 objective value.
func Symmetrize(m *Mechanism) (*Mechanism, error) {
	return core.Symmetrize(m)
}

// DerivableFromGM applies the Gupte–Sundararajan test: whether the
// mechanism can be obtained from GM by remapping outputs. EM and WM fail
// it for n > 1, certifying they are genuinely new mechanisms.
func DerivableFromGM(m *Mechanism, alpha float64) bool {
	return core.DerivableFromGM(m, alpha, 0)
}

// ParseProperties parses a list like "WH+CM" or "all" into a PropertySet.
func ParseProperties(s string) (PropertySet, error) {
	return core.ParseProperties(s)
}

// PropertySetString renders a PropertySet like "RH+CM+WH".
func PropertySetString(ps PropertySet) string {
	return core.PropertySetString(ps)
}

// ClosureOf expands a property set with everything it implies (RM ⇒ RH,
// CM ⇒ CH, CH ⇒ WH, F∧RH ⇒ CH, F∧CH ⇒ RH).
func ClosureOf(ps PropertySet) PropertySet {
	return core.Closure(ps)
}

// UniformWeights returns the uniform prior over inputs, the paper's
// default objective weighting.
func UniformWeights(n int) []float64 {
	return core.UniformWeights(n)
}

// Objective selects the loss Σ_j w_j Σ_i |i−j|^p·P[i][j] minimised by
// Design; P = 0 selects the paper's L0 (wrong-answer probability).
type Objective = design.Objective

// DesignProblem specifies a constrained mechanism-design instance for
// Design.
type DesignProblem = design.Problem

// DesignResult carries a designed mechanism plus LP diagnostics.
type DesignResult = design.Result

// Design solves the constrained mechanism-design LP of §III/§IV: BASICDP
// plus any property subset, minimising the requested objective. Results
// are exact LP optima from the built-in simplex solver.
func Design(p DesignProblem) (*DesignResult, error) {
	return design.Solve(p)
}

// DesignCtx is Design under a context: the simplex loops check ctx at
// every pivot and factorization boundary, so cancelling it abandons the
// solve within an iteration instead of letting it run to completion.
func DesignCtx(ctx context.Context, p DesignProblem) (*DesignResult, error) {
	return design.SolveCtx(ctx, p)
}

// DesignMinimax solves the same constrained design problem under the
// worst-input objective O_{p,max} of Definition 3 (⊕ = max): it bounds
// the expected penalty of every input rather than the average.
func DesignMinimax(p DesignProblem) (*DesignResult, error) {
	return design.SolveMinimax(p)
}

// DesignMinimaxCtx is DesignMinimax under a context, with the same
// prompt-cancellation guarantee as DesignCtx.
func DesignMinimaxCtx(ctx context.Context, p DesignProblem) (*DesignResult, error) {
	return design.SolveMinimaxCtx(ctx, p)
}

// AlphaFromEpsilon converts the conventional ε privacy parameter to the
// paper's α = exp(−ε).
func AlphaFromEpsilon(eps float64) float64 { return core.AlphaFromEpsilon(eps) }

// EpsilonFromAlpha converts the paper's α back to ε = −ln α.
func EpsilonFromAlpha(alpha float64) float64 { return core.EpsilonFromAlpha(alpha) }

// ComposedAlpha returns the overall privacy level α^k of k independent
// releases of an α-DP mechanism on the same input.
func ComposedAlpha(alpha float64, k int) float64 { return core.ComposedAlpha(alpha, k) }

// SplitAlpha returns the per-release level α^(1/k) whose k-fold
// composition meets an overall budget of α.
func SplitAlpha(alpha float64, k int) float64 { return core.SplitAlpha(alpha, k) }

// WM returns the paper's weakly-honest LP mechanism (weak honesty with
// row and column monotonicity), the intermediate point between GM and EM.
func WM(n int, alpha float64) (*Mechanism, error) {
	return design.WM(n, alpha)
}

// Choice is the outcome of the Figure 5 decision procedure.
type Choice = design.Choice

// Choose implements the paper's Figure 5 flowchart: given a requested
// property set it returns GM, EM, or the appropriate LP mechanism, with
// the decision rule that selected it.
func Choose(n int, alpha float64, props PropertySet) (*Choice, error) {
	return design.Choose(n, alpha, props)
}

// ChooseCtx is Choose under a context: the LP-backed flowchart branches
// cancel their design solve when ctx dies; the closed-form branches
// never block.
func ChooseCtx(ctx context.Context, n int, alpha float64, props PropertySet) (*Choice, error) {
	return design.ChooseCtx(ctx, n, alpha, props)
}

// GeometricL0 is GM's closed-form rescaled L0 score 2α/(1+α).
func GeometricL0(alpha float64) float64 { return core.GeometricL0(alpha) }

// ExplicitFairL0 is EM's closed-form rescaled L0 score (n+1)(1−y)/n.
func ExplicitFairL0(n int, alpha float64) float64 { return core.ExplicitFairL0(n, alpha) }

// Sampler draws mechanism outputs in O(1) per draw via alias tables.
type Sampler = core.Sampler

// NewSampler prepares a sampler for the mechanism.
func NewSampler(m *Mechanism) (*Sampler, error) {
	return core.NewSampler(m)
}

// Source produces the randomness consumed by samplers.
type Source = rng.Source

// Rand is a seeded, reproducible randomness source for experiments.
type Rand = rng.Rand

// NewRand returns a reproducible source for experiments. For releasing
// real data use CryptoSource instead.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// CryptoSource is a cryptographically secure Source, appropriate when a
// differentially private release must not be predictable.
type CryptoSource = rng.CryptoSource

// Service is the serving layer: a sharded cache of constructed
// mechanisms, each admitted with precomputed sampling and estimation
// tables, serving Sample/SampleBatch/Estimate concurrently. See
// internal/service for the architecture and cmd/privcountd for the HTTP
// front end.
type Service = service.Service

// ServiceConfig tunes a Service; the zero value is usable.
type ServiceConfig = service.Config

// ServiceStats is a snapshot of the mechanism cache's behaviour.
type ServiceStats = service.Stats

// Spec identifies one servable mechanism scenario — the cache key of
// the serving layer and, through its canonical wire token (Spec.ID,
// MarshalText), the resource identity of the v2 HTTP API. Equivalent
// specs — property sets with the same §IV-A closure, fields the kind
// ignores — share one canonical form (Spec.Canonical) and one ID.
type Spec = service.Spec

// ParseSpec parses a canonical mechanism wire token like
// "lp:n=64:a=0.5:RH+RM+CH+CM+WH:p=0" (see Spec.ID for the grammar) into
// its validated, canonical Spec.
func ParseSpec(token string) (Spec, error) {
	return service.ParseSpec(token)
}

// NewSpec assembles and validates a Spec from wire-level strings — the
// same constructor every privcountd transport parses through.
func NewSpec(mechanism string, n int, alpha float64, properties string, objectiveP float64) (Spec, error) {
	return service.NewSpec(mechanism, n, alpha, properties, objectiveP)
}

// Spec and build failure classes, matchable with errors.Is against any
// error the serving layer returns.
var (
	// ErrSpecInvalid marks malformed specs (unknown kind, alpha outside
	// (0,1), unknown properties, negative objective exponent).
	ErrSpecInvalid = service.ErrSpecInvalid
	// ErrOverLimit marks well-formed specs beyond a serving admission
	// bound (service.MaxN, MaxLPN, MaxLPMinimaxN).
	ErrOverLimit = service.ErrOverLimit
	// ErrBuildFailed marks deterministic mechanism-construction
	// failures; retrying the same spec fails the same way.
	ErrBuildFailed = service.ErrBuildFailed
	// ErrNotAdmitted is returned by status lookups for specs never
	// admitted (or since evicted).
	ErrNotAdmitted = service.ErrNotAdmitted
	// ErrNotReady marks an artifact export of a mechanism whose build
	// has not settled yet; retry once it is ready.
	ErrNotReady = service.ErrNotReady
	// ErrArtifactInvalid marks mechanism artifact bytes that fail
	// decoding or re-verification (bad framing, failed checksum, wrong
	// spec, non-stochastic matrix).
	ErrArtifactInvalid = service.ErrArtifactInvalid
)

// IsRetryableBuild reports whether a serving-layer error is
// cancellation-class — the build was cut short (abandoned request,
// eviction, shutdown) rather than deterministically failed — so
// re-requesting the same spec re-arms it.
func IsRetryableBuild(err error) bool { return service.IsRetryable(err) }

// SpecKind selects how a Spec's mechanism is constructed.
type SpecKind = service.Kind

// The supported Spec kinds.
const (
	// SpecChoose runs the Figure 5 decision procedure (the default).
	SpecChoose = service.KindChoose
	// SpecGeometric forces the truncated Geometric mechanism GM.
	SpecGeometric = service.KindGeometric
	// SpecExplicitFair forces the explicit fair mechanism EM.
	SpecExplicitFair = service.KindExplicitFair
	// SpecUniform forces the uniform mechanism UM.
	SpecUniform = service.KindUniform
	// SpecLP solves the constrained-design LP for the requested
	// properties and objective.
	SpecLP = service.KindLP
	// SpecLPMinimax solves the LP under the worst-input objective.
	SpecLPMinimax = service.KindLPMinimax
)

// ServiceEstimate is the decoded result of a batch of observed releases.
type ServiceEstimate = service.Estimate

// BuildState is one stage of a cached mechanism's build lifecycle:
// pending → building → ready/failed. Builds run on the Service's
// bounded background worker pool; see Service.GetCtx, Service.Start,
// Service.Status, Service.Warmup and Service.Close.
type BuildState = service.BuildState

// The mechanism build states.
const (
	// BuildPending: admitted, waiting for a build worker.
	BuildPending = service.BuildPending
	// BuildRunning: a worker is constructing the mechanism.
	BuildRunning = service.BuildRunning
	// BuildReady: serving tables populated and immutable.
	BuildReady = service.BuildReady
	// BuildFailed: the build errored or was cancelled (cancellations are
	// rebuildable on the next interested request).
	BuildFailed = service.BuildFailed
)

// BuildInfo is a snapshot of one cached mechanism's build status.
type BuildInfo = service.BuildInfo

// Store is a persistent mechanism-artifact tier keyed by canonical Spec
// ID. Wire one into ServiceConfig.Store to make builds read-through /
// write-behind persistent: cache misses try a stored artifact before
// solving, successful solves persist asynchronously. See NewFSStore.
type Store = service.Store

// NewFSStore opens (creating if needed) dir as a filesystem mechanism
// store: one file per artifact, atomic-rename writes, corrupt artifacts
// quarantined aside and rebuilt rather than crashing the server.
func NewFSStore(dir string) (Store, error) { return service.NewFSStore(dir) }

// NewService returns a serving layer with the given configuration. Call
// (*Service).Close to drain its background build pool on shutdown.
func NewService(cfg ServiceConfig) *Service {
	return service.New(cfg)
}
